//! Delta-driven grounding: maintain the grounding of one fact multiset
//! across windows under assertion/retraction instead of re-running
//! [`Grounder::ground`] from scratch.
//!
//! The design follows counting-based incremental view maintenance (à la
//! Gupta/Mumick, used for Datalog materialization by DRed-style reasoners
//! and for stream reasoning in temporal Datalog by Ronca et al.):
//!
//! * every **rule instantiation** — a `(rule, full variable bindings)` pair,
//!   exactly the dedup key of the window grounder — is materialized once,
//!   with its ground positive body recorded;
//! * every atom of the possible-set carries a **support count**: how many
//!   copies of it sit in the current input multiset plus how many live
//!   instantiations emit it as a head;
//! * **assertion** runs seeded semi-naive instantiation: each newly present
//!   atom is pushed through the per-literal delta plans (the rule's join
//!   plan with that literal forced first), so only joins touching new atoms
//!   are re-evaluated;
//! * **retraction** decrements input counts and kills, transitively, every
//!   instantiation whose positive body lost an atom — counting makes this
//!   exact because supported programs are acyclic (below).
//!
//! [`DeltaGrounder::ground_program`] then re-runs the certain/possible
//! simplification over the maintained instantiations
//! ([`crate::simplify::finalize_refs`]) to produce a [`GroundProgram`] with
//! exactly the same rule set as a from-scratch grounding of the current
//! fact multiset.
//!
//! # Supported programs
//!
//! [`DeltaGrounder::supports`] gates the machinery to programs where the
//! maintenance is provably exact *and* the final answer set is unique, so
//! end-to-end output stays byte-identical to full recomputation:
//!
//! * single-head rules only (no disjunction, no choice heads), and
//! * an acyclic predicate dependency graph (no recursion, positive or
//!   through negation).
//!
//! Acyclicity makes support counting exact under retraction (no cyclic
//! self-support) and implies stratification, so the program has at most one
//! answer set — making answer output independent of the order in which the
//! ground rules are assembled. Callers fall back to [`Grounder::ground`]
//! for anything else.

use crate::compile::{compare, make_plan, CAtom, CLit, CompiledRule, Step};
use crate::instantiate::{unify_args, Grounder};
use crate::planner::match_signature;
use crate::relation::key_for;
use crate::simplify::{finalize_refs, ProtoRule};
use crate::stats::RelationStats;
use asp_core::{
    ground_atom_cmp, AspError, FastMap, FastSet, GroundAtom, GroundProgram, GroundTerm, Predicate,
};
use sr_graph::{scc_ids, DiGraph};
use std::collections::VecDeque;
use std::sync::Arc;

/// Why an incremental [`DeltaGrounder::apply`] could not be completed. The
/// grounder state is left unusable in either case; callers must
/// [`DeltaGrounder::reset`] and rebuild from the full fact multiset (or
/// fall back to [`Grounder::ground`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// A retracted fact was not present in the maintained multiset: the
    /// delta chain is broken (e.g. a missed window).
    SupportUnderflow,
    /// Evaluation failed mid-maintenance (arithmetic/comparison error).
    Eval(AspError),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::SupportUnderflow => {
                write!(f, "retracted fact not present in the maintained window")
            }
            DeltaError::Eval(e) => write!(f, "delta grounding evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<AspError> for DeltaError {
    fn from(e: AspError) -> Self {
        DeltaError::Eval(e)
    }
}

/// Tuple storage with removal: like [`crate::relation::Relation`] but slots
/// can be freed, with lazily filtered per-pattern indexes and wholesale
/// rebuild once dead slots outnumber live ones.
#[derive(Debug, Default)]
struct DRel {
    slots: Vec<Option<Box<[GroundTerm]>>>,
    ids: FastMap<Box<[GroundTerm]>, u32>,
    indexes: FastMap<u64, FastMap<Box<[GroundTerm]>, Vec<u32>>>,
    dead: usize,
}

impl DRel {
    /// Inserts a tuple the caller knows to be absent.
    fn insert(&mut self, tuple: Box<[GroundTerm]>) {
        debug_assert!(!self.ids.contains_key(&tuple));
        let idx = u32::try_from(self.slots.len()).expect("delta relation overflow");
        for (&pattern, index) in self.indexes.iter_mut() {
            index.entry(key_for(&tuple, pattern)).or_default().push(idx);
        }
        self.ids.insert(tuple.clone(), idx);
        self.slots.push(Some(tuple));
    }

    /// Removes a tuple if present (slot is tombstoned; indexes are filtered
    /// lazily at lookup time).
    fn remove(&mut self, tuple: &[GroundTerm]) {
        if let Some(idx) = self.ids.remove(tuple) {
            self.slots[idx as usize] = None;
            self.dead += 1;
            if self.dead > self.ids.len() {
                self.rebuild();
            }
        }
    }

    fn rebuild(&mut self) {
        let live: Vec<Box<[GroundTerm]>> = self.slots.drain(..).flatten().collect();
        self.ids.clear();
        self.indexes.clear();
        self.dead = 0;
        for t in live {
            self.insert(t);
        }
    }

    /// Live tuple indices matching `key` under `pattern`, ascending.
    fn candidates(&mut self, pattern: u64, key: &[GroundTerm]) -> Vec<u32> {
        if pattern == 0 {
            return (0..self.slots.len() as u32)
                .filter(|&i| self.slots[i as usize].is_some())
                .collect();
        }
        if !self.indexes.contains_key(&pattern) {
            let mut index: FastMap<Box<[GroundTerm]>, Vec<u32>> = FastMap::default();
            for (i, tuple) in self.slots.iter().enumerate() {
                if let Some(tuple) = tuple {
                    index.entry(key_for(tuple, pattern)).or_default().push(i as u32);
                }
            }
            self.indexes.insert(pattern, index);
        }
        match self.indexes[&pattern].get(key) {
            Some(idxs) => {
                idxs.iter().copied().filter(|&i| self.slots[i as usize].is_some()).collect()
            }
            None => Vec::new(),
        }
    }

    #[inline]
    fn tuple(&self, idx: u32) -> &[GroundTerm] {
        self.slots[idx as usize].as_deref().expect("candidate slot is live")
    }
}

/// A seeded rule plan: `(compiled rule index, plan with one literal forced
/// first)`, shared between the per-predicate buckets it is registered in.
type SeededPlan = (u32, Arc<[Step]>);

/// Support counts of one possible-set atom.
#[derive(Clone, Copy, Debug, Default)]
struct Support {
    /// Copies of the atom in the current input multiset.
    input: u32,
    /// Live instantiations emitting the atom as their head.
    derived: u32,
}

/// One materialized rule instantiation.
#[derive(Debug)]
struct Inst {
    /// Compiled rule index (the dedup key's first half).
    rule: u32,
    /// Full variable bindings (the dedup key's second half).
    bindings: Box<[GroundTerm]>,
    /// The ground rule it contributes to the final program.
    proto: ProtoRule,
}

/// A stateful grounder maintaining the instantiation of one program against
/// an evolving fact multiset. See the module docs for the algorithm and the
/// supported-program gate.
#[derive(Debug)]
pub struct DeltaGrounder {
    grounder: Arc<Grounder>,
    /// Per-predicate delta plans: `(rule index, plan with one literal of
    /// this predicate forced first)`. `Arc`-shared because [`drain`]
    /// detaches a bucket from `&mut self` once per queued atom — a pointer
    /// bump, where cloning a `Vec` would allocate on the hottest
    /// maintenance path.
    ///
    /// [`drain`]: DeltaGrounder::drain
    seeded: FastMap<Predicate, Arc<[SeededPlan]>>,
    /// Rules with no positive body literal: instantiated once at reset,
    /// never retracted (they have no support to lose). `Arc`-shared for the
    /// same reason as `seeded` — [`DeltaGrounder::reset`] detaches it from
    /// `&mut self` with a pointer bump instead of a `Vec` clone.
    nullary: Arc<[SeededPlan]>,
    /// Head-first SCC rank per predicate (see [`topo_ranks`]); evaluating
    /// ranks high→low is stratum order.
    pred_rank: FastMap<Predicate, u32>,
    rels: FastMap<Predicate, DRel>,
    support: FastMap<GroundAtom, Support>,
    insts: Vec<Option<Inst>>,
    /// Live instantiation indices bucketed by head stratum (stale indices
    /// of killed instantiations are skipped lazily, swept on compaction):
    /// keeps [`DeltaGrounder::answer`] from re-bucketing per window.
    by_rank: Vec<Vec<u32>>,
    /// Instantiation indices of integrity constraints (no head).
    constraint_insts: Vec<u32>,
    inst_ids: FastMap<(u32, Box<[GroundTerm]>), u32>,
    /// atom -> instantiation indices with the atom in their positive body
    /// (dead indices are skipped lazily and swept on compaction).
    dependents: FastMap<GroundAtom, Vec<u32>>,
    /// Input atoms in first-seen order (drives fact emission order; may
    /// contain stale entries — atoms whose input count dropped back to
    /// zero, or duplicates from a retract/re-assert cycle — swept by
    /// [`DeltaGrounder::compact_fact_order`] once stale entries dominate,
    /// so churny streams don't grow it without bound).
    fact_order: Vec<GroundAtom>,
    /// Distinct atoms with `input > 0`: the live length of `fact_order`.
    live_input_atoms: usize,
    dead_insts: usize,
    /// Facts currently asserted (multiset size).
    input_facts: usize,
    /// Relation statistics for cost-based replanning of the seeded plans;
    /// `None` when cost planning is off. Maintained incrementally at the
    /// same three sites that mutate `rels` (fact assert, head emit, dead
    /// removal), so the counts always mirror the possible-set relations.
    stats: Option<RelationStats>,
    /// Stats generation the current `seeded` plans were built against.
    planned_gen: u64,
    /// Total seeded-plan rebuilds (bounded by generation bumps — the drift
    /// hysteresis in [`RelationStats`] prevents thrash under churn).
    replans: u64,
    /// Cumulative count of rebuilt plans whose relation-visit order differs
    /// from the syntactic heuristic's choice.
    plans_reordered: u64,
}

/// Predicate ranks in head-first SCC order (an edge body→head gives the
/// head a *smaller* rank, matching Tarjan's emission order in
/// [`Grounder::new`]); evaluating ranks high→low therefore processes
/// bodies before heads. `None` when the program is outside the supported
/// fragment: a choice or multi-head rule, or a dependency cycle (positive
/// or through negation).
fn topo_ranks(compiled: &[CompiledRule]) -> Option<(FastMap<Predicate, u32>, u32)> {
    if compiled.iter().any(|c| c.choice || c.heads.len() > 1) {
        return None;
    }
    let mut pred_ids: FastMap<Predicate, usize> = FastMap::default();
    let mut preds: Vec<Predicate> = Vec::new();
    let mut id_of = |p: Predicate, pred_ids: &mut FastMap<Predicate, usize>| {
        *pred_ids.entry(p).or_insert_with(|| {
            preds.push(p);
            preds.len() - 1
        })
    };
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for c in compiled {
        let Some(head) = c.heads.first() else { continue };
        let h = id_of(head.pred, &mut pred_ids);
        for lit in &c.body {
            if let CLit::Pos(a) | CLit::Neg(a) = lit {
                edges.push((id_of(a.pred, &mut pred_ids), h));
            }
        }
    }
    if edges.iter().any(|(u, v)| u == v) {
        return None; // self-loop
    }
    let n = preds.len();
    let mut graph = DiGraph::new(n);
    for (u, v) in &edges {
        graph.add_edge(*u, *v);
    }
    let sccs = scc_ids(&graph);
    let scc_count = sccs.iter().copied().max().map_or(0, |m| m + 1);
    if scc_count != n {
        return None; // a non-singleton SCC: recursion
    }
    let ranks = preds
        .iter()
        .enumerate()
        .map(|(pid, &p)| (p, sccs[pid] as u32))
        .collect::<FastMap<Predicate, u32>>();
    Some((ranks, scc_count as u32))
}

impl DeltaGrounder {
    /// True when `grounder`'s program is in the supported fragment:
    /// single-head rules and an acyclic predicate dependency graph (see the
    /// module docs for why both are required for exactness).
    pub fn supports(grounder: &Grounder) -> bool {
        topo_ranks(&grounder.compiled).is_some()
    }

    /// Builds a delta grounder over a compiled program, with an empty fact
    /// multiset. Fails when the program is outside the supported fragment
    /// or a delta plan cannot be built.
    pub fn new(grounder: Arc<Grounder>) -> Result<Self, AspError> {
        Self::with_cost_planning(grounder, false)
    }

    /// Like [`DeltaGrounder::new`], optionally enabling cost-based
    /// replanning of the seeded plans: relation statistics are maintained
    /// across windows and the plans are rebuilt (lazily, at the start of an
    /// [`DeltaGrounder::apply`]) whenever observed cardinalities drift past
    /// the hysteresis threshold of [`RelationStats`].
    pub fn with_cost_planning(
        grounder: Arc<Grounder>,
        cost_planning: bool,
    ) -> Result<Self, AspError> {
        let Some((pred_rank, rank_count)) = topo_ranks(&grounder.compiled) else {
            return Err(AspError::Internal(
                "delta grounding needs single-head rules and an acyclic dependency graph".into(),
            ));
        };
        let mut seeded: FastMap<Predicate, Vec<SeededPlan>> = FastMap::default();
        let mut nullary: Vec<SeededPlan> = Vec::new();
        for (idx, c) in grounder.compiled.iter().enumerate() {
            let pos_lits: Vec<usize> = c
                .body
                .iter()
                .enumerate()
                .filter_map(|(i, l)| matches!(l, CLit::Pos(_)).then_some(i))
                .collect();
            if pos_lits.is_empty() {
                nullary.push((idx as u32, c.plan.clone().into()));
                continue;
            }
            for &j in &pos_lits {
                let plan = make_plan(&c.body, c.var_count, Some(j)).map_err(|slot| {
                    AspError::UnsafeRule {
                        rule: format!("rule #{}", c.rule_idx),
                        variable: grounder.syms.resolve(c.var_names[slot as usize]).to_string(),
                    }
                })?;
                let CLit::Pos(a) = &c.body[j] else { unreachable!("pos_lits holds positives") };
                seeded.entry(a.pred).or_default().push((idx as u32, plan.into()));
            }
        }
        let mut dg = DeltaGrounder {
            grounder,
            seeded: seeded.into_iter().map(|(pred, plans)| (pred, plans.into())).collect(),
            nullary: nullary.into(),
            pred_rank,
            rels: FastMap::default(),
            support: FastMap::default(),
            insts: Vec::new(),
            by_rank: vec![Vec::new(); rank_count as usize],
            constraint_insts: Vec::new(),
            inst_ids: FastMap::default(),
            dependents: FastMap::default(),
            fact_order: Vec::new(),
            live_input_atoms: 0,
            dead_insts: 0,
            input_facts: 0,
            stats: cost_planning.then(RelationStats::new),
            planned_gen: 0,
            replans: 0,
            plans_reordered: 0,
        };
        dg.reset()?;
        Ok(dg)
    }

    /// True when cost-based seeded-plan replanning is enabled.
    pub fn cost_planning(&self) -> bool {
        self.stats.is_some()
    }

    /// Planner counters `(replans, plans_reordered, stats_generation)`;
    /// `None` when cost planning is off — callers must omit, never
    /// fabricate, the metrics in that case.
    pub fn planner_counters(&self) -> Option<(u64, u64, u64)> {
        self.stats.as_ref().map(|s| (self.replans, self.plans_reordered, s.generation()))
    }

    /// Rebuilds the seeded plans against the current statistics iff their
    /// generation moved since the last rebuild — at most one rebuild per
    /// generation bump, so the drift hysteresis bounds the replan rate.
    /// Body-free (`nullary`) plans have no joins to reorder and are left
    /// untouched.
    fn maybe_replan(&mut self) {
        let Some(stats) = &self.stats else { return };
        let generation = stats.generation();
        if generation == self.planned_gen {
            return;
        }
        self.planned_gen = generation;
        self.replans += 1;
        let _span = sr_obs::span(sr_obs::Stage::Plan);
        let grounder = Arc::clone(&self.grounder);
        let mut seeded: FastMap<Predicate, Vec<SeededPlan>> = FastMap::default();
        let mut reordered = 0u64;
        for (idx, c) in grounder.compiled.iter().enumerate() {
            for (j, l) in c.body.iter().enumerate() {
                let CLit::Pos(a) = l else { continue };
                // The body compiled, so planning cannot fail (safety is
                // order-independent); if it somehow does, keep the current
                // plans — they are correct for any statistics.
                let Ok(plan) = crate::planner::plan(&c.body, c.var_count, Some(j), stats) else {
                    debug_assert!(false, "replanning failed on a compiled rule");
                    return;
                };
                if let Ok(base) = make_plan(&c.body, c.var_count, Some(j)) {
                    if match_signature(&plan) != match_signature(&base) {
                        reordered += 1;
                    }
                }
                seeded.entry(a.pred).or_default().push((idx as u32, plan.into()));
            }
        }
        self.plans_reordered += reordered;
        self.seeded = seeded.into_iter().map(|(pred, plans)| (pred, plans.into())).collect();
    }

    /// The compiled program this grounder maintains.
    pub fn grounder(&self) -> &Arc<Grounder> {
        &self.grounder
    }

    /// Number of facts currently asserted (multiset size).
    pub fn input_facts(&self) -> usize {
        self.input_facts
    }

    /// Number of live rule instantiations currently materialized.
    pub fn instantiations(&self) -> usize {
        self.insts.len() - self.dead_insts
    }

    /// Observed sizes of the maintained stores, in the cell units of
    /// [`crate::analysis::DeltaStateBound`]. Slot counts include
    /// tombstones, so the amortized-compaction slack (`slots ≤ 2 × live`)
    /// is visible to bound-soundness checks.
    pub fn state_size(&self) -> crate::analysis::DeltaStateSize {
        crate::analysis::DeltaStateSize {
            input_facts: self.input_facts,
            live_instantiations: self.instantiations(),
            instantiation_slots: self.insts.len(),
            support_atoms: self.support.len(),
            relation_slots: self.rels.values().map(|r| r.slots.len()).sum(),
        }
    }

    /// Clears the maintained state back to the empty fact multiset
    /// (re-instantiating body-free rules).
    pub fn reset(&mut self) -> Result<(), AspError> {
        self.rels.clear();
        self.support.clear();
        self.insts.clear();
        for bucket in &mut self.by_rank {
            bucket.clear();
        }
        self.constraint_insts.clear();
        self.inst_ids.clear();
        self.dependents.clear();
        self.fact_order.clear();
        self.live_input_atoms = 0;
        self.dead_insts = 0;
        self.input_facts = 0;
        let to_asp = |e: DeltaError| match e {
            DeltaError::Eval(e) => e,
            DeltaError::SupportUnderflow => {
                AspError::Internal("underflow with no retractions".into())
            }
        };
        if let Some(stats) = &mut self.stats {
            stats.clear();
            // The current plans stay installed (any order is correct); sync
            // the generation so the clear alone doesn't force a replan.
            self.planned_gen = stats.generation();
        }
        let mut queue = VecDeque::new();
        let nullary = Arc::clone(&self.nullary);
        for &(rule, ref plan) in nullary.iter() {
            self.eval_plan(rule, plan, None, &mut queue).map_err(to_asp)?;
        }
        // Heads of body-free rules can feed other rules' bodies.
        self.drain(&mut queue).map_err(to_asp)
    }

    /// Applies one window delta: retracts `retracted` from and asserts
    /// `added` into the maintained fact multiset, updating instantiations
    /// incrementally. On error the state is inconsistent; the caller must
    /// [`DeltaGrounder::reset`] and rebuild.
    pub fn apply(
        &mut self,
        added: &[GroundAtom],
        retracted: &[GroundAtom],
    ) -> Result<(), DeltaError> {
        // Replan against the statistics of the previous window's end state
        // (if their generation moved) before touching this window's delta.
        self.maybe_replan();
        // Retract first: multiset(current) = multiset(base) - retracted + added.
        let mut dead: Vec<GroundAtom> = Vec::new();
        for f in retracted {
            let Some(s) = self.support.get_mut(f) else {
                return Err(DeltaError::SupportUnderflow);
            };
            if s.input == 0 {
                return Err(DeltaError::SupportUnderflow);
            }
            s.input -= 1;
            self.input_facts -= 1;
            if s.input == 0 {
                self.live_input_atoms -= 1;
                if s.derived == 0 {
                    dead.push(f.clone());
                }
            }
        }
        self.process_dead(dead);

        let mut queue = VecDeque::new();
        for f in added {
            let s = self.support.entry(f.clone()).or_default();
            let newly_present = s.input == 0 && s.derived == 0;
            let newly_input = s.input == 0;
            s.input += 1;
            self.input_facts += 1;
            if newly_input {
                self.fact_order.push(f.clone());
                self.live_input_atoms += 1;
            }
            if newly_present {
                self.rels.entry(f.predicate()).or_default().insert(f.args.clone());
                if let Some(stats) = &mut self.stats {
                    stats.insert(f.predicate(), &f.args);
                }
                queue.push_back(f.clone());
            }
        }
        if self.fact_order.len() > 64 && self.fact_order.len() > self.live_input_atoms * 2 {
            self.compact_fact_order();
        }
        self.drain(&mut queue)
    }

    /// Sweeps `fact_order` down to one entry per live input atom (amortized
    /// like [`DeltaGrounder::compact`]): first-seen order of the survivors
    /// is preserved, which is all [`DeltaGrounder::ground_program`] needs.
    fn compact_fact_order(&mut self) {
        let old = std::mem::take(&mut self.fact_order);
        let mut seen: FastSet<GroundAtom> = FastSet::default();
        for f in old {
            if self.support.get(&f).is_some_and(|s| s.input > 0) && seen.insert(f.clone()) {
                self.fact_order.push(f);
            }
        }
        debug_assert_eq!(self.fact_order.len(), self.live_input_atoms);
    }

    /// Fires the seeded delta plans for every queued newly-present atom
    /// until the instantiation fixpoint is reached.
    fn drain(&mut self, queue: &mut VecDeque<GroundAtom>) -> Result<(), DeltaError> {
        while let Some(atom) = queue.pop_front() {
            let Some(plans) = self.seeded.get(&atom.predicate()) else { continue };
            let plans = Arc::clone(plans);
            for (rule, plan) in plans.iter() {
                self.eval_plan(*rule, plan, Some(&atom), queue)?;
            }
        }
        Ok(())
    }

    /// Transitively kills instantiations supported by the atoms in `dead`
    /// (which just became absent), decrementing head supports as it goes.
    fn process_dead(&mut self, mut dead: Vec<GroundAtom>) {
        while let Some(atom) = dead.pop() {
            if let Some(rel) = self.rels.get_mut(&atom.predicate()) {
                rel.remove(&atom.args);
                if let Some(stats) = &mut self.stats {
                    stats.remove(atom.predicate(), &atom.args);
                }
            }
            self.support.remove(&atom);
            let Some(watchers) = self.dependents.remove(&atom) else { continue };
            for ii in watchers {
                let Some(inst) = self.insts[ii as usize].take() else { continue };
                self.inst_ids.remove(&(inst.rule, inst.bindings.clone()));
                self.dead_insts += 1;
                for h in &inst.proto.heads {
                    let Some(s) = self.support.get_mut(h) else { continue };
                    s.derived -= 1;
                    if s.input == 0 && s.derived == 0 {
                        dead.push(h.clone());
                    }
                }
            }
        }
        if self.dead_insts * 2 > self.insts.len() {
            self.compact();
        }
    }

    /// Rebuilds the instantiation store without dead slots (amortized; the
    /// dependents and stratum indexes are swept along).
    fn compact(&mut self) {
        let old = std::mem::take(&mut self.insts);
        self.inst_ids.clear();
        self.dependents.clear();
        for bucket in &mut self.by_rank {
            bucket.clear();
        }
        self.constraint_insts.clear();
        self.dead_insts = 0;
        for inst in old.into_iter().flatten() {
            let idx = self.insts.len() as u32;
            self.inst_ids.insert((inst.rule, inst.bindings.clone()), idx);
            for p in &inst.proto.pos {
                self.dependents.entry(p.clone()).or_default().push(idx);
            }
            self.index_inst(idx, &inst);
            self.insts.push(Some(inst));
        }
    }

    /// Records an instantiation in the stratum index.
    fn index_inst(&mut self, idx: u32, inst: &Inst) {
        match inst.proto.heads.first() {
            Some(h) => self.by_rank[self.pred_rank[&h.predicate()] as usize].push(idx),
            None => self.constraint_insts.push(idx),
        }
    }

    /// Evaluates one plan. With `seed`, the first step (the forced-first
    /// literal) is unified directly against the seed atom instead of being
    /// joined against its relation.
    fn eval_plan(
        &mut self,
        rule_idx: u32,
        plan: &[Step],
        seed: Option<&GroundAtom>,
        queue: &mut VecDeque<GroundAtom>,
    ) -> Result<(), DeltaError> {
        let g = Arc::clone(&self.grounder);
        let rule = &g.compiled[rule_idx as usize];
        let mut subst: Vec<Option<GroundTerm>> = vec![None; rule.var_count as usize];
        let mut trail: Vec<u32> = Vec::new();
        match seed {
            Some(atom) => {
                let Some(Step::Match { atom: seed_atom, .. }) = plan.first() else {
                    unreachable!("seeded plans start with the forced literal");
                };
                debug_assert_eq!(seed_atom.pred, atom.predicate());
                if unify_args(&seed_atom.args, &atom.args, &mut subst, &mut trail)? {
                    self.step(rule_idx, rule, plan, 1, &mut subst, &mut trail, queue)?;
                }
            }
            None => self.step(rule_idx, rule, plan, 0, &mut subst, &mut trail, queue)?,
        }
        Ok(())
    }

    // KEEP IN SYNC with `Eval::step` (instantiate.rs): same plan-walk
    // semantics (Match pattern build, Compare/Bind backtracking, NegCheck
    // pass-through) over `DRel` storage with an undo trail. The
    // delta-on/off identity proptests catch divergence, but a semantic fix
    // here almost certainly belongs there too.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        rule_idx: u32,
        rule: &CompiledRule,
        plan: &[Step],
        idx: usize,
        subst: &mut [Option<GroundTerm>],
        trail: &mut Vec<u32>,
        queue: &mut VecDeque<GroundAtom>,
    ) -> Result<(), DeltaError> {
        let Some(step) = plan.get(idx) else {
            return self.emit(rule_idx, rule, subst, queue);
        };
        match step {
            Step::Match { atom, static_bound, .. } => {
                let mut pattern = 0u64;
                let mut keyvals: Vec<GroundTerm> = Vec::new();
                for (i, (arg, b)) in atom.args.iter().zip(static_bound.iter()).enumerate() {
                    if *b && i < 64 {
                        pattern |= 1 << i;
                        keyvals.push(arg.eval(subst)?);
                    }
                }
                let rel = self.rels.entry(atom.pred).or_default();
                let candidates = rel.candidates(pattern, &keyvals);
                for c in candidates {
                    // Clone the tuple: emitting may insert into this
                    // relation and move its backing storage.
                    let Some(rel) = self.rels.get(&atom.pred) else { break };
                    let tuple: Box<[GroundTerm]> = rel.tuple(c).into();
                    let mark = trail.len();
                    if unify_args(&atom.args, &tuple, subst, trail)? {
                        self.step(rule_idx, rule, plan, idx + 1, subst, trail, queue)?;
                    }
                    while trail.len() > mark {
                        let slot = trail.pop().expect("trail underflow");
                        subst[slot as usize] = None;
                    }
                }
                Ok(())
            }
            Step::Compare { lhs, op, rhs } => {
                let l = lhs.eval(subst)?;
                let r = rhs.eval(subst)?;
                if compare(&l, *op, &r)? {
                    self.step(rule_idx, rule, plan, idx + 1, subst, trail, queue)
                } else {
                    Ok(())
                }
            }
            Step::Bind { slot, expr } => {
                let v = expr.eval(subst)?;
                subst[*slot as usize] = Some(v);
                let result = self.step(rule_idx, rule, plan, idx + 1, subst, trail, queue);
                subst[*slot as usize] = None;
                result
            }
            Step::NegCheck { .. } => {
                // Possible-set semantics: default negation never blocks
                // here; the simplification pass handles it.
                self.step(rule_idx, rule, plan, idx + 1, subst, trail, queue)
            }
        }
    }

    fn emit(
        &mut self,
        rule_idx: u32,
        rule: &CompiledRule,
        subst: &mut [Option<GroundTerm>],
        queue: &mut VecDeque<GroundAtom>,
    ) -> Result<(), DeltaError> {
        // The dedup key matches the window grounder's `seen` exactly.
        let bindings: Box<[GroundTerm]> =
            subst.iter().map(|s| s.clone().unwrap_or(GroundTerm::Int(i64::MIN))).collect();
        if self.inst_ids.contains_key(&(rule_idx, bindings.clone())) {
            return Ok(());
        }

        let eval_atom = |a: &CAtom, subst: &[Option<GroundTerm>]| -> Result<GroundAtom, AspError> {
            let mut args = Vec::with_capacity(a.args.len());
            for t in a.args.iter() {
                args.push(t.eval(subst)?);
            }
            Ok(GroundAtom { pred: a.pred.name, args: args.into(), strong_neg: a.pred.strong_neg })
        };

        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for lit in &rule.body {
            match lit {
                CLit::Pos(a) => pos.push(eval_atom(a, subst)?),
                CLit::Neg(a) => neg.push(eval_atom(a, subst)?),
                CLit::Cmp(..) => {}
            }
        }
        let heads: Vec<GroundAtom> =
            rule.heads.iter().map(|h| eval_atom(h, subst)).collect::<Result<_, _>>()?;

        let idx = self.insts.len() as u32;
        for p in &pos {
            self.dependents.entry(p.clone()).or_default().push(idx);
        }
        self.inst_ids.insert((rule_idx, bindings.clone()), idx);
        for h in &heads {
            let s = self.support.entry(h.clone()).or_default();
            let newly_present = s.input == 0 && s.derived == 0;
            s.derived += 1;
            if newly_present {
                self.rels.entry(h.predicate()).or_default().insert(h.args.clone());
                if let Some(stats) = &mut self.stats {
                    stats.insert(h.predicate(), &h.args);
                }
                queue.push_back(h.clone());
            }
        }
        let inst = Inst { rule: rule_idx, bindings, proto: ProtoRule { heads, pos, neg } };
        self.index_inst(idx, &inst);
        self.insts.push(Some(inst));
        Ok(())
    }

    /// True when the atom is in the current possible-set (asserted as a fact
    /// or emitted by a live instantiation).
    fn is_present(&self, a: &GroundAtom) -> bool {
        self.support.contains_key(a)
    }

    /// Computes the unique answer set of the current fact multiset directly
    /// from the maintained instantiations — `None` means unsatisfiable (a
    /// constraint fires, or a strong-negation conflict).
    ///
    /// The supported fragment is stratified (acyclic, even through
    /// negation), so the unique stable model is the perfect model:
    /// evaluating predicates in stratum order, an atom holds iff it is an
    /// asserted fact or some live instantiation derives it with its
    /// positive body in and its negated body out of the model so far. This
    /// skips simplification, completion-clause translation and CDCL
    /// entirely — the maintained instantiations *are* the ground program —
    /// which is what makes delta grounding pay off end to end: by
    /// construction the result equals solving
    /// [`DeltaGrounder::ground_program`] (enforced by the identity tests).
    pub fn answer(&self) -> Option<Vec<GroundAtom>> {
        // Asserted facts hold unconditionally.
        let mut model: FastSet<&GroundAtom> = FastSet::default();
        for (atom, support) in &self.support {
            if support.input > 0 {
                model.insert(atom);
            }
        }

        // Stratum order: ranks are head-first, so evaluate back to front
        // (bodies before the heads that consume them). Buckets are
        // maintained incrementally; indices of killed instantiations are
        // skipped.
        for bucket in self.by_rank.iter().rev() {
            for &idx in bucket {
                let Some(inst) = &self.insts[idx as usize] else { continue };
                let head = &inst.proto.heads[0];
                if model.contains(head) {
                    continue;
                }
                if inst.proto.pos.iter().all(|a| model.contains(a))
                    && inst.proto.neg.iter().all(|a| !model.contains(a))
                {
                    model.insert(head);
                }
            }
        }

        // Strong-negation consistency: `p` and `-p` together are
        // unsatisfiable (the constraints the window grounder would emit).
        for atom in &model {
            if atom.strong_neg {
                let twin =
                    GroundAtom { pred: atom.pred, args: atom.args.clone(), strong_neg: false };
                if model.contains(&twin) {
                    return None;
                }
            }
        }

        // Integrity constraints over the final model.
        for &idx in &self.constraint_insts {
            let Some(c) = &self.insts[idx as usize] else { continue };
            if c.proto.pos.iter().all(|a| model.contains(a))
                && c.proto.neg.iter().all(|a| !model.contains(a))
            {
                return None;
            }
        }

        Some(model.into_iter().cloned().collect())
    }

    /// Builds the simplified ground program of the current fact multiset.
    /// The rule *set* equals a from-scratch [`Grounder::ground`] of the same
    /// facts; rule order may differ, which cannot affect answers in the
    /// supported (unique-answer-set) fragment.
    pub fn ground_program(&self) -> GroundProgram {
        // Fact protos, in first-assertion order, one per distinct live fact.
        let mut fact_protos: Vec<ProtoRule> = Vec::new();
        let mut seen: FastSet<&GroundAtom> = FastSet::default();
        for f in &self.fact_order {
            if self.support.get(f).is_some_and(|s| s.input > 0) && seen.insert(f) {
                fact_protos.push(ProtoRule {
                    heads: vec![f.clone()],
                    pos: Vec::new(),
                    neg: Vec::new(),
                });
            }
        }

        // Strong-negation consistency constraints, re-derived from the
        // current possible-set (cheap: scans the support map once).
        let mut strong: Vec<&GroundAtom> = self.support.keys().filter(|a| a.strong_neg).collect();
        strong.sort_by(|a, b| ground_atom_cmp(&self.grounder.syms, a, b));
        let mut sn_protos: Vec<ProtoRule> = Vec::new();
        for neg_atom in strong {
            let pos_atom =
                GroundAtom { pred: neg_atom.pred, args: neg_atom.args.clone(), strong_neg: false };
            if self.support.contains_key(&pos_atom) {
                sn_protos.push(ProtoRule {
                    heads: Vec::new(),
                    pos: vec![neg_atom.clone(), pos_atom],
                    neg: Vec::new(),
                });
            }
        }

        let refs: Vec<&ProtoRule> = fact_protos
            .iter()
            .chain(self.insts.iter().flatten().map(|i| &i.proto))
            .chain(sn_protos.iter())
            .collect();
        finalize_refs(&|a| self.is_present(a), &refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp_core::Symbols;
    use asp_parser::parse_program;

    const TRAFFIC: &str = r#"
        very_slow_speed(X) :- average_speed(X,Y), Y < 20.
        many_cars(X) :- car_number(X,Y), Y > 40.
        traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).
        give_notification(X) :- traffic_jam(X).
    "#;

    fn atom(syms: &Symbols, name: &str, args: &[i64]) -> GroundAtom {
        GroundAtom::new(syms.intern(name), args.iter().map(|&a| GroundTerm::Int(a)).collect())
    }

    fn build(src: &str) -> (Symbols, Arc<Grounder>, DeltaGrounder) {
        let syms = Symbols::new();
        let program = parse_program(&syms, src).unwrap();
        let grounder = Arc::new(Grounder::new(&syms, &program).unwrap());
        let dg = DeltaGrounder::new(Arc::clone(&grounder)).unwrap();
        (syms, grounder, dg)
    }

    fn assert_matches_scratch(
        syms: &Symbols,
        grounder: &Grounder,
        dg: &DeltaGrounder,
        facts: &[GroundAtom],
    ) {
        let scratch = grounder.ground(facts).unwrap();
        let maintained = dg.ground_program();
        assert_eq!(
            maintained.canonical_form(syms),
            scratch.canonical_form(syms),
            "maintained grounding diverged from scratch over {} facts",
            facts.len()
        );
    }

    #[test]
    fn supports_gates_on_fragment() {
        let syms = Symbols::new();
        let ok = parse_program(&syms, TRAFFIC).unwrap();
        assert!(DeltaGrounder::supports(&Grounder::new(&syms, &ok).unwrap()));
        // Positive recursion.
        let rec =
            parse_program(&syms, "reach(X,Y) :- edge(X,Y).\nreach(X,Z) :- reach(X,Y), edge(Y,Z).")
                .unwrap();
        assert!(!DeltaGrounder::supports(&Grounder::new(&syms, &rec).unwrap()));
        // Negation cycle (even loop).
        let loop_ = parse_program(&syms, "a :- not b. b :- not a.").unwrap();
        assert!(!DeltaGrounder::supports(&Grounder::new(&syms, &loop_).unwrap()));
        // Choice head.
        let choice = parse_program(&syms, "{a}.").unwrap();
        assert!(!DeltaGrounder::supports(&Grounder::new(&syms, &choice).unwrap()));
        // Disjunction.
        let disj = parse_program(&syms, "a | b :- c.").unwrap();
        assert!(!DeltaGrounder::supports(&Grounder::new(&syms, &disj).unwrap()));
    }

    #[test]
    fn additions_match_scratch_grounding() {
        let (syms, grounder, mut dg) = build(TRAFFIC);
        let facts = vec![
            atom(&syms, "average_speed", &[1, 10]),
            atom(&syms, "car_number", &[1, 55]),
            atom(&syms, "traffic_light", &[2]),
        ];
        dg.apply(&facts, &[]).unwrap();
        assert_matches_scratch(&syms, &grounder, &dg, &facts);
        assert_eq!(dg.input_facts(), 3);
        assert!(dg.instantiations() >= 4, "speed, cars, jam, notification fired");
    }

    #[test]
    fn retraction_kills_derivation_chain() {
        let (syms, grounder, mut dg) = build(TRAFFIC);
        let all = vec![atom(&syms, "average_speed", &[1, 10]), atom(&syms, "car_number", &[1, 55])];
        dg.apply(&all, &[]).unwrap();
        // Retract the speed reading: jam and notification must die.
        dg.apply(&[], &all[..1]).unwrap();
        assert_matches_scratch(&syms, &grounder, &dg, &all[1..]);
        // And re-asserting resurrects them.
        dg.apply(&all[..1], &[]).unwrap();
        assert_matches_scratch(&syms, &grounder, &dg, &all);
    }

    #[test]
    fn multiset_counts_retraction() {
        let (syms, grounder, mut dg) = build(TRAFFIC);
        let f = atom(&syms, "average_speed", &[1, 10]);
        dg.apply(&[f.clone(), f.clone()], &[]).unwrap();
        dg.apply(&[], std::slice::from_ref(&f)).unwrap();
        // One copy retracted: the fact (and its derivation) is still live.
        assert_matches_scratch(&syms, &grounder, &dg, std::slice::from_ref(&f));
        dg.apply(&[], std::slice::from_ref(&f)).unwrap();
        assert_matches_scratch(&syms, &grounder, &dg, &[]);
        assert_eq!(dg.input_facts(), 0);
    }

    #[test]
    fn underflow_is_reported() {
        let (syms, _g, mut dg) = build(TRAFFIC);
        let f = atom(&syms, "average_speed", &[1, 10]);
        assert_eq!(
            dg.apply(&[], std::slice::from_ref(&f)),
            Err(DeltaError::SupportUnderflow),
            "retracting an absent fact must not be silently ignored"
        );
    }

    #[test]
    fn reset_restores_the_empty_grounding() {
        let (syms, grounder, mut dg) = build(TRAFFIC);
        dg.apply(&[atom(&syms, "average_speed", &[1, 10])], &[]).unwrap();
        dg.reset().unwrap();
        assert_matches_scratch(&syms, &grounder, &dg, &[]);
        assert_eq!(dg.input_facts(), 0);
        assert_eq!(dg.instantiations(), 0);
    }

    #[test]
    fn body_free_rules_survive_reset_and_retraction() {
        let src = "base(1). p(X) :- q(X), base(X).";
        let (syms, grounder, mut dg) = build(src);
        let q = atom(&syms, "q", &[1]);
        dg.apply(std::slice::from_ref(&q), &[]).unwrap();
        assert_matches_scratch(&syms, &grounder, &dg, std::slice::from_ref(&q));
        dg.apply(&[], std::slice::from_ref(&q)).unwrap();
        assert_matches_scratch(&syms, &grounder, &dg, &[]);
    }

    #[test]
    fn derived_atom_also_asserted_as_fact() {
        // very_slow_speed is derivable AND arrives as an input fact; its
        // presence must survive retraction of either support.
        let (syms, grounder, mut dg) = build(TRAFFIC);
        let speed = atom(&syms, "average_speed", &[1, 10]);
        let derived = atom(&syms, "very_slow_speed", &[1]);
        dg.apply(&[speed.clone(), derived.clone()], &[]).unwrap();
        assert_matches_scratch(&syms, &grounder, &dg, &[speed.clone(), derived.clone()]);
        dg.apply(&[], std::slice::from_ref(&speed)).unwrap();
        assert_matches_scratch(&syms, &grounder, &dg, std::slice::from_ref(&derived));
        dg.apply(&[], std::slice::from_ref(&derived)).unwrap();
        assert_matches_scratch(&syms, &grounder, &dg, &[]);
    }

    #[test]
    fn strong_negation_constraints_are_maintained() {
        let src = "ok(X) :- sensor(X), not -sensor(X).";
        let syms = Symbols::new();
        let program = parse_program(&syms, src).unwrap();
        let grounder = Arc::new(Grounder::new(&syms, &program).unwrap());
        let mut dg = DeltaGrounder::new(Arc::clone(&grounder)).unwrap();
        let pos = atom(&syms, "sensor", &[1]);
        let neg = GroundAtom { strong_neg: true, ..pos.clone() };
        dg.apply(&[pos.clone(), neg.clone()], &[]).unwrap();
        assert_matches_scratch(&syms, &grounder, &dg, &[pos.clone(), neg.clone()]);
        dg.apply(&[], std::slice::from_ref(&neg)).unwrap();
        assert_matches_scratch(&syms, &grounder, &dg, std::slice::from_ref(&pos));
    }

    #[test]
    fn churn_triggers_compaction_and_stays_exact() {
        let (syms, grounder, mut dg) = build(TRAFFIC);
        let mut live: Vec<GroundAtom> = Vec::new();
        for round in 0..12i64 {
            let f = vec![
                atom(&syms, "average_speed", &[round, 5]),
                atom(&syms, "car_number", &[round, 50]),
            ];
            dg.apply(&f, &live).unwrap();
            live = f;
        }
        assert_matches_scratch(&syms, &grounder, &dg, &live);
    }

    #[test]
    fn fact_order_stays_bounded_under_churn() {
        // Retract/assert the whole window every round: without the sweep,
        // `fact_order` would hold one stale entry per round forever.
        let (syms, grounder, mut dg) = build(TRAFFIC);
        let per_round = 40usize;
        let mut live: Vec<GroundAtom> = Vec::new();
        for round in 0..50i64 {
            let f: Vec<GroundAtom> = (0..per_round as i64)
                .map(|i| atom(&syms, "average_speed", &[round * per_round as i64 + i, 5]))
                .collect();
            dg.apply(&f, &live).unwrap();
            live = f;
        }
        assert!(
            dg.fact_order.len() <= per_round * 2,
            "fact_order grew without bound: {} entries for {} live atoms",
            dg.fact_order.len(),
            per_round
        );
        assert_eq!(dg.live_input_atoms, per_round);
        assert_matches_scratch(&syms, &grounder, &dg, &live);
    }

    #[test]
    fn answer_is_the_perfect_model() {
        let (syms, _g, mut dg) = build(TRAFFIC);
        let light = atom(&syms, "traffic_light", &[1]);
        let facts = vec![
            atom(&syms, "average_speed", &[1, 10]),
            atom(&syms, "car_number", &[1, 55]),
            light.clone(),
        ];
        dg.apply(&facts, &[]).unwrap();
        let model = dg.answer().expect("satisfiable");
        let rendered: Vec<String> = model.iter().map(|a| a.display(&syms).to_string()).collect();
        assert!(rendered.contains(&"very_slow_speed(1)".to_string()));
        assert!(rendered.contains(&"many_cars(1)".to_string()));
        assert!(
            !rendered.iter().any(|a| a.starts_with("traffic_jam")),
            "the light blocks the jam: {rendered:?}"
        );
        // Retract the light: the jam (and the notification) fire.
        dg.apply(&[], std::slice::from_ref(&light)).unwrap();
        let model = dg.answer().expect("satisfiable");
        let rendered: Vec<String> = model.iter().map(|a| a.display(&syms).to_string()).collect();
        assert!(rendered.contains(&"traffic_jam(1)".to_string()), "{rendered:?}");
        assert!(rendered.contains(&"give_notification(1)".to_string()));
    }

    #[test]
    fn answer_reports_unsat_on_firing_constraint() {
        let (syms, _g, mut dg) = build("p(X) :- q(X). :- p(X), bad(X).");
        let q = atom(&syms, "q", &[1]);
        let bad = atom(&syms, "bad", &[1]);
        dg.apply(&[q.clone(), bad.clone()], &[]).unwrap();
        assert!(dg.answer().is_none(), "constraint fires");
        dg.apply(&[], std::slice::from_ref(&bad)).unwrap();
        assert!(dg.answer().is_some(), "retracting bad(1) restores satisfiability");
    }

    #[test]
    fn answer_reports_unsat_on_strong_negation_conflict() {
        let (syms, _g, mut dg) = build("ok(X) :- sensor(X).");
        let pos = atom(&syms, "sensor", &[1]);
        let neg = GroundAtom { strong_neg: true, ..pos.clone() };
        dg.apply(&[pos, neg], &[]).unwrap();
        assert!(dg.answer().is_none(), "p and -p conflict");
    }

    fn build_cost(src: &str) -> (Symbols, Arc<Grounder>, DeltaGrounder) {
        let syms = Symbols::new();
        let program = parse_program(&syms, src).unwrap();
        let grounder = Arc::new(Grounder::new(&syms, &program).unwrap());
        let dg = DeltaGrounder::with_cost_planning(Arc::clone(&grounder), true).unwrap();
        (syms, grounder, dg)
    }

    #[test]
    fn cost_planning_stays_identical_under_churn() {
        let (syms, grounder, mut dg) = build_cost(TRAFFIC);
        let mut live: Vec<GroundAtom> = Vec::new();
        for round in 0..12i64 {
            // Skew hard: many speed readings, one car count.
            let mut f: Vec<GroundAtom> =
                (0..20).map(|i| atom(&syms, "average_speed", &[round * 20 + i, 5])).collect();
            f.push(atom(&syms, "car_number", &[round * 20, 50]));
            dg.apply(&f, &live).unwrap();
            live = f;
            assert_matches_scratch(&syms, &grounder, &dg, &live);
        }
        let (replans, _reordered, generation) = dg.planner_counters().unwrap();
        assert!(replans >= 1, "a 20x-skewed stream must drift at least once");
        assert!(
            replans <= generation,
            "at most one rebuild per generation bump: {replans} replans, gen {generation}"
        );
    }

    #[test]
    fn replans_are_bounded_by_stats_drift() {
        let (syms, _g, mut dg) = build_cost(TRAFFIC);
        let f: Vec<GroundAtom> =
            (0..100i64).map(|i| atom(&syms, "average_speed", &[i, 5])).collect();
        dg.apply(&f, &[]).unwrap();
        dg.apply(&[], &[]).unwrap(); // pick up the growth's generation bump
        let (replans, ..) = dg.planner_counters().unwrap();
        for _ in 0..10 {
            dg.apply(&[], &[]).unwrap();
        }
        let (replans_after, ..) = dg.planner_counters().unwrap();
        assert_eq!(replans, replans_after, "stable windows must not replan");
        assert!(dg.cost_planning());
        let (_, _, dg_off) = build(TRAFFIC);
        assert!(dg_off.planner_counters().is_none(), "counters are omitted when off");
    }

    #[test]
    fn constraints_fire_and_retract() {
        let src = "p(X) :- q(X). :- p(X), bad(X).";
        let (syms, grounder, mut dg) = build(src);
        let facts = vec![atom(&syms, "q", &[1]), atom(&syms, "bad", &[1])];
        dg.apply(&facts, &[]).unwrap();
        assert_matches_scratch(&syms, &grounder, &dg, &facts);
        dg.apply(&[], &facts[1..]).unwrap();
        assert_matches_scratch(&syms, &grounder, &dg, &facts[..1]);
    }
}
