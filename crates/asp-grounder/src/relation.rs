//! Extensional storage for ground tuples per predicate, with lazily built
//! binding-pattern hash indexes for the instantiation joins.

use asp_core::{FastMap, GroundTerm};

/// A set of ground tuples for one predicate, deduplicated, with per-pattern
/// hash indexes.
///
/// A *binding pattern* is a bitmask over argument positions: bit `i` set means
/// position `i` is bound at lookup time. For each pattern the relation keeps a
/// map from the bound-positions key to the matching tuple indices; indexes are
/// created on first use and maintained incrementally on insert, so repeated
/// joins in the semi-naive fixpoint stay cheap.
#[derive(Debug, Default)]
pub struct Relation {
    tuples: Vec<Box<[GroundTerm]>>,
    ids: FastMap<Box<[GroundTerm]>, u32>,
    indexes: FastMap<u64, FastMap<Box<[GroundTerm]>, Vec<u32>>>,
}

impl Relation {
    /// An empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuple at `idx`.
    #[inline]
    pub fn tuple(&self, idx: u32) -> &[GroundTerm] {
        &self.tuples[idx as usize]
    }

    /// All tuples in insertion order.
    pub fn tuples(&self) -> &[Box<[GroundTerm]>] {
        &self.tuples
    }

    /// Inserts a tuple; returns its index if it was new.
    pub fn insert(&mut self, tuple: Box<[GroundTerm]>) -> Option<u32> {
        if self.ids.contains_key(&tuple) {
            return None;
        }
        let idx = u32::try_from(self.tuples.len()).expect("relation overflow");
        for (&pattern, index) in self.indexes.iter_mut() {
            let key = key_for(&tuple, pattern);
            index.entry(key).or_default().push(idx);
        }
        self.ids.insert(tuple.clone(), idx);
        self.tuples.push(tuple);
        Some(idx)
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[GroundTerm]) -> bool {
        self.ids.contains_key(tuple)
    }

    /// Tuple indices matching `key` under `pattern`, restricted to indices in
    /// `[lo, hi)`. `pattern == 0` scans the whole range. The returned vector
    /// is in ascending index order.
    pub fn lookup(&mut self, pattern: u64, key: &[GroundTerm], lo: u32, hi: u32) -> Vec<u32> {
        if pattern == 0 {
            return (lo..hi).collect();
        }
        let index = self.index_for(pattern);
        match index.get(key) {
            Some(idxs) => idxs.iter().copied().filter(|&i| i >= lo && i < hi).collect(),
            None => Vec::new(),
        }
    }

    fn index_for(&mut self, pattern: u64) -> &FastMap<Box<[GroundTerm]>, Vec<u32>> {
        if !self.indexes.contains_key(&pattern) {
            let mut index: FastMap<Box<[GroundTerm]>, Vec<u32>> = FastMap::default();
            for (i, tuple) in self.tuples.iter().enumerate() {
                index.entry(key_for(tuple, pattern)).or_default().push(i as u32);
            }
            self.indexes.insert(pattern, index);
        }
        &self.indexes[&pattern]
    }
}

/// Extracts the bound-position values of `tuple` under `pattern`.
pub(crate) fn key_for(tuple: &[GroundTerm], pattern: u64) -> Box<[GroundTerm]> {
    tuple
        .iter()
        .enumerate()
        .filter(|(i, _)| pattern & (1 << i) != 0)
        .map(|(_, t)| t.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp_core::Symbols;

    fn t(vals: &[i64]) -> Box<[GroundTerm]> {
        vals.iter().map(|&v| GroundTerm::Int(v)).collect()
    }

    #[test]
    fn insert_dedupes() {
        let mut r = Relation::new();
        assert_eq!(r.insert(t(&[1, 2])), Some(0));
        assert_eq!(r.insert(t(&[1, 2])), None);
        assert_eq!(r.insert(t(&[1, 3])), Some(1));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&t(&[1, 2])));
        assert!(!r.contains(&t(&[9, 9])));
    }

    #[test]
    fn pattern_lookup_finds_matches() {
        let mut r = Relation::new();
        r.insert(t(&[1, 10]));
        r.insert(t(&[1, 20]));
        r.insert(t(&[2, 30]));
        // pattern 0b01: first position bound.
        let hits = r.lookup(0b01, &t(&[1]), 0, 3);
        assert_eq!(hits, vec![0, 1]);
        let hits = r.lookup(0b01, &t(&[2]), 0, 3);
        assert_eq!(hits, vec![2]);
        let hits = r.lookup(0b01, &t(&[7]), 0, 3);
        assert!(hits.is_empty());
    }

    #[test]
    fn index_stays_fresh_after_inserts() {
        let mut r = Relation::new();
        r.insert(t(&[1, 10]));
        // Force index creation, then insert more.
        assert_eq!(r.lookup(0b01, &t(&[1]), 0, 1).len(), 1);
        r.insert(t(&[1, 20]));
        assert_eq!(r.lookup(0b01, &t(&[1]), 0, 2), vec![0, 1]);
    }

    #[test]
    fn range_restriction_supports_semi_naive_deltas() {
        let mut r = Relation::new();
        r.insert(t(&[1, 10]));
        r.insert(t(&[1, 20]));
        r.insert(t(&[1, 30]));
        assert_eq!(r.lookup(0b01, &t(&[1]), 1, 3), vec![1, 2]);
        assert_eq!(r.lookup(0, &[], 1, 2), vec![1]);
    }

    #[test]
    fn second_position_pattern() {
        let syms = Symbols::new();
        let a = GroundTerm::Const(syms.intern("a"));
        let mut r = Relation::new();
        r.insert(vec![GroundTerm::Int(1), a.clone()].into());
        r.insert(vec![GroundTerm::Int(2), a.clone()].into());
        let hits = r.lookup(0b10, std::slice::from_ref(&a), 0, 2);
        assert_eq!(hits, vec![0, 1]);
    }
}
