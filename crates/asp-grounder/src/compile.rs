//! Rule compilation: variable slot allocation, safety analysis and greedy
//! join ordering into executable [`Step`] plans.

use asp_core::{
    ArithOp, AspError, Atom, BodyLiteral, CmpOp, FastMap, GroundTerm, Predicate, Rule, Sym,
    Symbols, Term,
};

/// A term compiled against a rule's variable slots.
#[derive(Clone, Debug, PartialEq)]
pub enum CTerm {
    /// Symbolic constant.
    Const(Sym),
    /// Integer.
    Int(i64),
    /// Variable slot.
    Var(u32),
    /// Compound term.
    Func(Sym, Box<[CTerm]>),
    /// Arithmetic expression (operands must be bound integers at eval time).
    BinOp(ArithOp, Box<CTerm>, Box<CTerm>),
}

impl CTerm {
    /// True when every variable slot in the term is bound.
    pub(crate) fn bound_under(&self, bound: &[bool]) -> bool {
        match self {
            CTerm::Const(_) | CTerm::Int(_) => true,
            CTerm::Var(s) => bound[*s as usize],
            CTerm::Func(_, args) => args.iter().all(|a| a.bound_under(bound)),
            CTerm::BinOp(_, l, r) => l.bound_under(bound) && r.bound_under(bound),
        }
    }

    /// Marks variables occurring in non-arithmetic positions as bound
    /// (structural matching binds them).
    pub(crate) fn mark_bindable(&self, bound: &mut [bool]) {
        match self {
            CTerm::Const(_) | CTerm::Int(_) => {}
            CTerm::Var(s) => bound[*s as usize] = true,
            CTerm::Func(_, args) => {
                for a in args.iter() {
                    a.mark_bindable(bound);
                }
            }
            // Arithmetic cannot be inverted: matching `p(X+1)` requires X to
            // be bound already, so it binds nothing.
            CTerm::BinOp(..) => {}
        }
    }

    /// True when arithmetic subterms only use already-bound variables, i.e.
    /// the term is matchable.
    pub(crate) fn matchable_under(&self, bound: &[bool]) -> bool {
        match self {
            CTerm::Const(_) | CTerm::Int(_) | CTerm::Var(_) => true,
            CTerm::Func(_, args) => args.iter().all(|a| a.matchable_under(bound)),
            CTerm::BinOp(..) => self.bound_under(bound),
        }
    }

    /// Evaluates a fully bound term to a ground term.
    pub fn eval(&self, subst: &[Option<GroundTerm>]) -> Result<GroundTerm, AspError> {
        match self {
            CTerm::Const(s) => Ok(GroundTerm::Const(*s)),
            CTerm::Int(i) => Ok(GroundTerm::Int(*i)),
            CTerm::Var(s) => subst[*s as usize]
                .clone()
                .ok_or_else(|| AspError::Internal("unbound variable at evaluation".into())),
            CTerm::Func(f, args) => {
                let mut out = Vec::with_capacity(args.len());
                for a in args.iter() {
                    out.push(a.eval(subst)?);
                }
                Ok(GroundTerm::Func(*f, out.into()))
            }
            CTerm::BinOp(op, l, r) => {
                let lv = l.eval(subst)?;
                let rv = r.eval(subst)?;
                match (lv, rv) {
                    (GroundTerm::Int(a), GroundTerm::Int(b)) => {
                        Ok(GroundTerm::Int(op.apply(a, b)?))
                    }
                    _ => Err(AspError::Eval("arithmetic on non-integer terms".into())),
                }
            }
        }
    }
}

/// A compiled atom.
#[derive(Clone, Debug)]
pub struct CAtom {
    /// Predicate (name, arity, strong-negation polarity).
    pub pred: Predicate,
    /// Compiled argument terms.
    pub args: Box<[CTerm]>,
}

/// Where a `Match` step reads its tuples from in the semi-naive fixpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// The full, final relation (non-recursive predicate).
    Full,
    /// Only the previous round's newly derived tuples.
    Delta,
    /// Everything derived so far (recursive predicate, non-designated).
    Live,
}

/// One step of an executable rule plan.
#[derive(Clone, Debug)]
pub enum Step {
    /// Join against a relation.
    Match {
        /// The atom to match.
        atom: CAtom,
        /// `static_bound[i]` = argument `i` is fully bound when this step
        /// runs (so it participates in the index key).
        static_bound: Box<[bool]>,
        /// Tuple source for semi-naive evaluation.
        source: Source,
    },
    /// Check a fully bound comparison.
    Compare {
        /// Left operand.
        lhs: CTerm,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        rhs: CTerm,
    },
    /// Bind a variable to a computed value (`X = expr`).
    Bind {
        /// Target slot.
        slot: u32,
        /// Bound expression.
        expr: CTerm,
    },
    /// Record a fully bound default-negated atom (always "passes" during the
    /// possible-set computation; simplification happens after grounding).
    NegCheck {
        /// The negated atom.
        atom: CAtom,
    },
}

/// A rule compiled for instantiation.
#[derive(Debug)]
pub struct CompiledRule {
    /// Index of the source rule in the program.
    pub rule_idx: usize,
    /// Compiled head atoms.
    pub heads: Vec<CAtom>,
    /// True for a choice head.
    pub choice: bool,
    /// Compiled body literals, original order (used to build plan variants).
    pub body: Vec<CLit>,
    /// The generic plan (no forced-first literal).
    pub plan: Vec<Step>,
    /// Number of variable slots.
    pub var_count: u32,
    /// Slot index -> variable name (for error messages).
    pub var_names: Vec<Sym>,
}

/// A compiled body literal.
#[derive(Clone, Debug)]
pub enum CLit {
    /// Positive atom.
    Pos(CAtom),
    /// Default-negated atom.
    Neg(CAtom),
    /// Comparison.
    Cmp(CTerm, CmpOp, CTerm),
}

impl CompiledRule {
    /// Indices into `body` of positive literals whose predicate satisfies
    /// `is_recursive`.
    pub fn recursive_literals(&self, is_recursive: impl Fn(Predicate) -> bool) -> Vec<usize> {
        self.body
            .iter()
            .enumerate()
            .filter_map(|(i, l)| match l {
                CLit::Pos(a) if is_recursive(a.pred) => Some(i),
                _ => None,
            })
            .collect()
    }
}

/// Compiles `rule` (at `rule_idx` in its program), performing the safety
/// check. `syms` is needed only to render error messages.
pub fn compile_rule(
    syms: &Symbols,
    rule: &Rule,
    rule_idx: usize,
) -> Result<CompiledRule, AspError> {
    // Intervals are a parser-level feature (expanded there); reject any that
    // arrive via a hand-built AST instead of panicking deep in compilation.
    fn has_interval(t: &Term) -> bool {
        match t {
            Term::Interval(..) => true,
            Term::Func(_, args) => args.iter().any(has_interval),
            Term::BinOp(_, l, r) => has_interval(l) || has_interval(r),
            _ => false,
        }
    }
    let mut all_terms = rule.head.atoms().iter().flat_map(|a| a.args.iter());
    if all_terms.any(has_interval)
        || rule.body.iter().any(|l| match l {
            asp_core::BodyLiteral::Atom { atom, .. } => atom.args.iter().any(has_interval),
            asp_core::BodyLiteral::Comparison { lhs, rhs, .. } => {
                has_interval(lhs) || has_interval(rhs)
            }
        })
    {
        return Err(AspError::Eval(format!(
            "interval terms must be expanded before grounding: {}",
            rule.display(syms)
        )));
    }

    struct SlotAlloc {
        slots: FastMap<Sym, u32>,
        names: Vec<Sym>,
    }
    impl SlotAlloc {
        fn slot(&mut self, v: Sym) -> u32 {
            if let Some(&s) = self.slots.get(&v) {
                return s;
            }
            let s = self.names.len() as u32;
            self.names.push(v);
            self.slots.insert(v, s);
            s
        }
        fn cterm(&mut self, t: &Term) -> CTerm {
            match t {
                Term::Const(s) => CTerm::Const(*s),
                Term::Int(i) => CTerm::Int(*i),
                Term::Var(v) => CTerm::Var(self.slot(*v)),
                Term::Func(f, args) => {
                    CTerm::Func(*f, args.iter().map(|a| self.cterm(a)).collect())
                }
                Term::BinOp(op, l, r) => {
                    CTerm::BinOp(*op, Box::new(self.cterm(l)), Box::new(self.cterm(r)))
                }
                // Guarded against in compile_rule before allocation starts.
                Term::Interval(..) => unreachable!("intervals are expanded by the parser"),
            }
        }
        fn catom(&mut self, a: &Atom) -> CAtom {
            CAtom { pred: a.predicate(), args: a.args.iter().map(|t| self.cterm(t)).collect() }
        }
    }

    let mut alloc = SlotAlloc { slots: FastMap::default(), names: Vec::new() };
    let heads: Vec<CAtom> = rule.head.atoms().iter().map(|a| alloc.catom(a)).collect();
    let body: Vec<CLit> = rule
        .body
        .iter()
        .map(|l| match l {
            BodyLiteral::Atom { atom, negated: false } => CLit::Pos(alloc.catom(atom)),
            BodyLiteral::Atom { atom, negated: true } => CLit::Neg(alloc.catom(atom)),
            BodyLiteral::Comparison { lhs, op, rhs } => {
                CLit::Cmp(alloc.cterm(lhs), *op, alloc.cterm(rhs))
            }
        })
        .collect();

    let var_names = alloc.names;
    let var_count = var_names.len() as u32;
    let choice = matches!(rule.head, asp_core::Head::Choice(_));
    let plan = make_plan(&body, var_count, None).map_err(|slot| AspError::UnsafeRule {
        rule: rule.display(syms).to_string(),
        variable: syms.resolve(var_names[slot as usize]).to_string(),
    })?;

    // Safety: every head variable must be bound by the body plan.
    let mut bound = vec![false; var_count as usize];
    apply_plan_bindings(&plan, &mut bound);
    for h in &heads {
        for arg in h.args.iter() {
            if let Some(slot) = first_unbound(arg, &bound) {
                return Err(AspError::UnsafeRule {
                    rule: rule.display(syms).to_string(),
                    variable: syms.resolve(var_names[slot as usize]).to_string(),
                });
            }
        }
    }

    Ok(CompiledRule { rule_idx, heads, choice, body, plan, var_count, var_names })
}

fn apply_plan_bindings(plan: &[Step], bound: &mut [bool]) {
    for step in plan {
        match step {
            Step::Match { atom, .. } => {
                for a in atom.args.iter() {
                    a.mark_bindable(bound);
                }
            }
            Step::Bind { slot, .. } => bound[*slot as usize] = true,
            Step::Compare { .. } | Step::NegCheck { .. } => {}
        }
    }
}

pub(crate) fn first_unbound(t: &CTerm, bound: &[bool]) -> Option<u32> {
    match t {
        CTerm::Const(_) | CTerm::Int(_) => None,
        CTerm::Var(s) => (!bound[*s as usize]).then_some(*s),
        CTerm::Func(_, args) => args.iter().find_map(|a| first_unbound(a, bound)),
        CTerm::BinOp(_, l, r) => first_unbound(l, bound).or_else(|| first_unbound(r, bound)),
    }
}

/// Builds an executable plan for `body`, optionally forcing body literal
/// `forced_first` (which must be a positive atom) to be matched first — the
/// semi-naive delta designation. Fails with the slot of an unbindable
/// variable when the body is unsafe.
///
/// This is the syntactic default: the greedy state machine lives in
/// [`crate::planner::plan`], and this entry point runs it with
/// [`crate::planner::SyntacticCost`], which reproduces the original
/// maximize-bound-args heuristic exactly. Cost-based callers pass a
/// [`crate::stats::RelationStats`] instead.
pub fn make_plan(
    body: &[CLit],
    var_count: u32,
    forced_first: Option<usize>,
) -> Result<Vec<Step>, u32> {
    crate::planner::plan(body, var_count, forced_first, &crate::planner::SyntacticCost)
}

/// Compares two ground terms for a builtin comparison. Equality is
/// structural; ordered comparisons require integers on both sides.
pub fn compare(lhs: &GroundTerm, op: CmpOp, rhs: &GroundTerm) -> Result<bool, AspError> {
    match op {
        CmpOp::Eq => Ok(lhs == rhs),
        CmpOp::Neq => Ok(lhs != rhs),
        _ => match (lhs, rhs) {
            (GroundTerm::Int(a), GroundTerm::Int(b)) => Ok(op.eval(a.cmp(b))),
            _ => Err(AspError::Eval("ordered comparison requires integer operands".into())),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp_parser::parse_rule;

    fn compiled(src: &str) -> (Symbols, CompiledRule) {
        let syms = Symbols::new();
        let rule = parse_rule(&syms, src).unwrap();
        let c = compile_rule(&syms, &rule, 0).unwrap();
        (syms, c)
    }

    #[test]
    fn plan_orders_comparison_after_binding_match() {
        let (_s, c) = compiled("very_slow_speed(X) :- average_speed(X,Y), Y < 20.");
        assert_eq!(c.plan.len(), 2);
        assert!(matches!(c.plan[0], Step::Match { .. }));
        assert!(matches!(c.plan[1], Step::Compare { .. }));
    }

    #[test]
    fn plan_defers_negation_until_bound() {
        let (_s, c) =
            compiled("traffic_jam(X) :- not traffic_light(X), very_slow_speed(X), many_cars(X).");
        assert!(matches!(c.plan[0], Step::Match { .. }));
        assert!(matches!(c.plan[2], Step::NegCheck { .. }));
    }

    #[test]
    fn eq_binds_variables() {
        let (_s, c) = compiled("p(Z) :- q(X), Z = X + 1.");
        assert!(c.plan.iter().any(|s| matches!(s, Step::Bind { .. })));
    }

    #[test]
    fn unsafe_head_variable_is_rejected() {
        let syms = Symbols::new();
        let rule = parse_rule(&syms, "p(Y) :- q(X).").unwrap();
        let err = compile_rule(&syms, &rule, 0).unwrap_err();
        assert!(
            matches!(err, AspError::UnsafeRule { ref variable, .. } if variable == "Y"),
            "{err}"
        );
    }

    #[test]
    fn unsafe_negated_variable_is_rejected() {
        let syms = Symbols::new();
        let rule = parse_rule(&syms, "p :- not q(X).").unwrap();
        assert!(compile_rule(&syms, &rule, 0).is_err());
    }

    #[test]
    fn unsafe_comparison_variable_is_rejected() {
        let syms = Symbols::new();
        let rule = parse_rule(&syms, "p :- q(X), X < Y.").unwrap();
        assert!(compile_rule(&syms, &rule, 0).is_err());
    }

    #[test]
    fn second_literal_keys_on_join_variable() {
        let (_s, c) = compiled("h(X) :- a(X), b(X).");
        match &c.plan[1] {
            Step::Match { static_bound, .. } => assert_eq!(&static_bound[..], &[true]),
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn forced_first_literal_leads_plan() {
        let (_s, c) = compiled("h(X) :- a(X), b(X).");
        let plan = make_plan(&c.body, c.var_count, Some(1)).unwrap();
        match &plan[0] {
            Step::Match { atom, .. } => {
                assert_eq!(atom.pred.arity, 1);
                // Literal 1 is b/1.
                match &c.body[1] {
                    CLit::Pos(b) => assert_eq!(atom.pred, b.pred),
                    _ => unreachable!(),
                }
            }
            other => panic!("expected match, got {other:?}"),
        }
    }

    #[test]
    fn compare_semantics() {
        let syms = Symbols::new();
        let a = GroundTerm::Const(syms.intern("a"));
        let b = GroundTerm::Const(syms.intern("b"));
        assert!(compare(&a, CmpOp::Neq, &b).unwrap());
        assert!(compare(&a, CmpOp::Eq, &a).unwrap());
        assert!(compare(&GroundTerm::Int(1), CmpOp::Lt, &GroundTerm::Int(2)).unwrap());
        assert!(compare(&a, CmpOp::Lt, &b).is_err());
    }

    #[test]
    fn cterm_eval_folds_arithmetic() {
        let (_s, c) = compiled("p(Z) :- q(X), Z = 2 * X + 1.");
        let bind = c.plan.iter().find_map(|s| match s {
            Step::Bind { expr, .. } => Some(expr.clone()),
            _ => None,
        });
        let expr = bind.expect("plan must contain a bind");
        // q's X is slot... find it by evaluating with X = 5.
        let mut subst = vec![None; c.var_count as usize];
        for slot in 0..c.var_count {
            subst[slot as usize] = Some(GroundTerm::Int(5));
        }
        assert_eq!(expr.eval(&subst).unwrap(), GroundTerm::Int(11));
    }
}
