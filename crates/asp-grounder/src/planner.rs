//! Cost-based join ordering: the greedy state machine behind every rule
//! plan, parameterized by a [`CostSource`].
//!
//! [`plan`] walks the rule body exactly like the original
//! [`crate::compile::make_plan`] heuristic did — eager comparisons and
//! binds, fully bound negation last, an optional forced-first literal for
//! semi-naive delta designation — but picks the next positive literal by
//! *estimated cost* instead of bound-argument count. Two cost sources
//! exist:
//!
//! * [`SyntacticCost`] — `-(bound argument count)`: reproduces the
//!   original heuristic bit for bit (strictly-smaller-wins over an
//!   ascending scan is exactly max-score with earliest-index tie-break),
//!   so planner-off behavior is unchanged by construction;
//! * [`crate::stats::RelationStats`] — `cardinality / Π distinct(bound
//!   positions)`, the classic textbook join-size estimate: a literal's
//!   cost is how many tuples the match is expected to enumerate given the
//!   variables already bound.
//!
//! Plan order changes join evaluation *order*, never the derived set: the
//! set of variables bound after running a plan depends only on which
//! literals it contains, and both grounding paths dedup emissions on
//! `(rule, full bindings)`. The planner-on/off identity property tests
//! enforce this end to end.

use crate::compile::{first_unbound, CAtom, CLit, CTerm, Source, Step};
use crate::stats::RelationStats;
use asp_core::{CmpOp, Predicate};

/// A cost model for the greedy planner: estimates how expensive matching
/// `atom` next would be, given which variable slots are currently bound.
/// Lower is cheaper; exact ties keep source order.
pub trait CostSource {
    /// Estimated cost of matching `atom` with the given bound-slot mask.
    /// Must be finite (never NaN) so the strict `<` comparison in [`plan`]
    /// stays a total order over candidates.
    fn cost(&self, atom: &CAtom, bound: &[bool]) -> f64;
}

/// The original syntactic heuristic expressed as a cost: minus the number
/// of bound arguments, so "most bound args first, source order on ties"
/// falls out of the generic minimum-cost selection unchanged.
#[derive(Clone, Copy, Debug, Default)]
pub struct SyntacticCost;

impl CostSource for SyntacticCost {
    fn cost(&self, atom: &CAtom, bound: &[bool]) -> f64 {
        -(atom.args.iter().filter(|a| a.bound_under(bound)).count() as f64)
    }
}

/// Selectivity credited per bound argument of a predicate the stats have
/// never observed: unknown relations are costed pessimistically at one
/// past the largest known cardinality, discounted by this factor per bound
/// argument — so unknowns order among themselves like the syntactic
/// heuristic, and after relations the stats actually know.
const BOUND_FACTOR: f64 = 8.0;

impl CostSource for RelationStats {
    fn cost(&self, atom: &CAtom, bound: &[bool]) -> f64 {
        let bound_args = atom.args.iter().filter(|a| a.bound_under(bound)).count();
        match self.cardinality(atom.pred) {
            Some(card) => {
                let mut divisor = 1.0;
                for (pos, arg) in atom.args.iter().enumerate() {
                    if arg.bound_under(bound) {
                        divisor *= self.distinct(atom.pred, pos).max(1) as f64;
                    }
                }
                card as f64 / divisor
            }
            None => (1.0 + self.max_cardinality() as f64) / BOUND_FACTOR.powi(bound_args as i32),
        }
    }
}

/// Builds an executable plan for `body`, optionally forcing body literal
/// `forced_first` (which must be a positive atom) to be matched first —
/// the semi-naive delta designation. Positive literals are appended
/// greedily cheapest-first per `cost`; comparisons and binds stay eager
/// and fully bound negation stays last, so safety and stratification
/// semantics are identical for every cost source. Fails with the slot of
/// an unbindable variable when the body is unsafe (a verdict independent
/// of the cost source: the bound-variable set after a plan depends only on
/// which literals were used, so greedy selection in any order completes
/// whenever some order does).
pub fn plan(
    body: &[CLit],
    var_count: u32,
    forced_first: Option<usize>,
    cost: &dyn CostSource,
) -> Result<Vec<Step>, u32> {
    let n = body.len();
    let mut used = vec![false; n];
    let mut bound = vec![false; var_count as usize];
    let mut plan: Vec<Step> = Vec::with_capacity(n);

    let push_match = |i: usize,
                      used: &mut Vec<bool>,
                      bound: &mut Vec<bool>,
                      plan: &mut Vec<Step>| {
        let CLit::Pos(atom) = &body[i] else { unreachable!("match step on non-positive literal") };
        let static_bound: Box<[bool]> = atom.args.iter().map(|a| a.bound_under(bound)).collect();
        for a in atom.args.iter() {
            a.mark_bindable(bound);
        }
        plan.push(Step::Match { atom: atom.clone(), static_bound, source: Source::Full });
        used[i] = true;
    };

    if let Some(f) = forced_first {
        push_match(f, &mut used, &mut bound, &mut plan);
    }

    while used.iter().any(|u| !u) {
        // 1. Cheap deterministic steps first: bound comparisons and binds.
        let mut progressed = false;
        for i in 0..n {
            if used[i] {
                continue;
            }
            if let CLit::Cmp(lhs, op, rhs) = &body[i] {
                let lb = lhs.bound_under(&bound);
                let rb = rhs.bound_under(&bound);
                if lb && rb {
                    plan.push(Step::Compare { lhs: lhs.clone(), op: *op, rhs: rhs.clone() });
                    used[i] = true;
                    progressed = true;
                } else if *op == CmpOp::Eq {
                    // `X = expr` / `expr = X` with exactly one unbound var.
                    let bind = match (lhs, rhs, lb, rb) {
                        (CTerm::Var(s), e, false, true) => Some((*s, e.clone())),
                        (e, CTerm::Var(s), true, false) => Some((*s, e.clone())),
                        _ => None,
                    };
                    if let Some((slot, expr)) = bind {
                        plan.push(Step::Bind { slot, expr });
                        bound[slot as usize] = true;
                        used[i] = true;
                        progressed = true;
                    }
                }
            }
        }
        if progressed {
            continue;
        }

        // 2. Cheapest runnable positive match next; strict `<` over an
        //    ascending scan keeps source order on exact ties.
        let mut best: Option<(f64, usize)> = None;
        for i in 0..n {
            if used[i] {
                continue;
            }
            if let CLit::Pos(atom) = &body[i] {
                if !atom.args.iter().all(|a| a.matchable_under(&bound)) {
                    continue;
                }
                let c = cost.cost(atom, &bound);
                if best.is_none_or(|(bc, _)| c < bc) {
                    best = Some((c, i));
                }
            }
        }
        if let Some((_, i)) = best {
            push_match(i, &mut used, &mut bound, &mut plan);
            continue;
        }

        // 3. Fully bound negative literals.
        let mut neg_done = false;
        for i in 0..n {
            if used[i] {
                continue;
            }
            if let CLit::Neg(atom) = &body[i] {
                if atom.args.iter().all(|a| a.bound_under(&bound)) {
                    plan.push(Step::NegCheck { atom: atom.clone() });
                    used[i] = true;
                    neg_done = true;
                }
            }
        }
        if neg_done {
            continue;
        }

        // 4. Stuck: report the first unbound variable of an unused literal.
        for i in 0..n {
            if used[i] {
                continue;
            }
            let slot = match &body[i] {
                CLit::Pos(a) | CLit::Neg(a) => a.args.iter().find_map(|t| first_unbound(t, &bound)),
                CLit::Cmp(l, _, r) => first_unbound(l, &bound).or_else(|| first_unbound(r, &bound)),
            };
            if let Some(slot) = slot {
                return Err(slot);
            }
        }
        unreachable!("stuck plan with no unbound variable");
    }
    Ok(plan)
}

/// The relation-visit order of a plan: two plans with equal signatures join
/// the same relations in the same order (used to count `plans_reordered` —
/// how many active plans differ from the syntactic heuristic's choice).
pub fn match_signature(plan: &[Step]) -> Vec<Predicate> {
    plan.iter()
        .filter_map(|s| match s {
            Step::Match { atom, .. } => Some(atom.pred),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_rule, make_plan, CompiledRule};
    use asp_core::{GroundAtom, GroundTerm, Symbols};
    use asp_parser::parse_rule;

    fn compiled(src: &str) -> (Symbols, CompiledRule) {
        let syms = Symbols::new();
        let rule = parse_rule(&syms, src).unwrap();
        let c = compile_rule(&syms, &rule, 0).unwrap();
        (syms, c)
    }

    fn fill(stats: &mut RelationStats, syms: &Symbols, name: &str, tuples: &[&[i64]]) {
        for t in tuples {
            let f =
                GroundAtom::new(syms.intern(name), t.iter().map(|&a| GroundTerm::Int(a)).collect());
            stats.insert(f.predicate(), &f.args);
        }
    }

    fn pred_names(syms: &Symbols, plan: &[Step]) -> Vec<String> {
        match_signature(plan).iter().map(|p| syms.resolve(p.name).to_string()).collect()
    }

    #[test]
    fn cheapest_relation_leads_the_join() {
        let (syms, c) = compiled("h(X,Y) :- big(X,Z), small(Z,Y).");
        let mut stats = RelationStats::new();
        let big: Vec<Vec<i64>> = (0..50).map(|i| vec![i, i % 10]).collect();
        let big_refs: Vec<&[i64]> = big.iter().map(Vec::as_slice).collect();
        fill(&mut stats, &syms, "big", &big_refs);
        fill(&mut stats, &syms, "small", &[&[1, 7], &[2, 8]]);
        let plan = plan(&c.body, c.var_count, None, &stats).unwrap();
        assert_eq!(pred_names(&syms, &plan), vec!["small", "big"], "2 tuples beat 50");
        // The syntactic heuristic would have kept source order here.
        let syntactic = make_plan(&c.body, c.var_count, None).unwrap();
        assert_eq!(pred_names(&syms, &syntactic), vec!["big", "small"]);
        assert_ne!(match_signature(&plan), match_signature(&syntactic));
    }

    #[test]
    fn bound_positions_divide_by_distinct_counts() {
        // After watch(X) binds X, src(X,Z) with 50 tuples over 50 distinct
        // X values estimates at 1 tuple — cheaper than dst with 20 tuples
        // and nothing bound.
        let (syms, c) = compiled("h(X,Y) :- watch(X), dst(W,Y), src(X,W).");
        let mut stats = RelationStats::new();
        fill(&mut stats, &syms, "watch", &[&[1], &[2]]);
        let src: Vec<Vec<i64>> = (0..50).map(|i| vec![i, i + 100]).collect();
        let src_refs: Vec<&[i64]> = src.iter().map(Vec::as_slice).collect();
        fill(&mut stats, &syms, "src", &src_refs);
        let dst: Vec<Vec<i64>> = (0..20).map(|i| vec![i + 100, i]).collect();
        let dst_refs: Vec<&[i64]> = dst.iter().map(Vec::as_slice).collect();
        fill(&mut stats, &syms, "dst", &dst_refs);
        let plan = plan(&c.body, c.var_count, None, &stats).unwrap();
        assert_eq!(pred_names(&syms, &plan), vec!["watch", "src", "dst"]);
    }

    #[test]
    fn equal_estimates_reproduce_source_order() {
        let (syms, c) = compiled("h(X,Y) :- a(X), b(Y), c(X,Y).");
        let mut stats = RelationStats::new();
        fill(&mut stats, &syms, "a", &[&[1], &[2], &[3]]);
        fill(&mut stats, &syms, "b", &[&[4], &[5], &[6]]);
        let cs: Vec<Vec<i64>> = (0..9).map(|i| vec![i % 3 + 1, i / 3 + 4]).collect();
        let c_refs: Vec<&[i64]> = cs.iter().map(Vec::as_slice).collect();
        fill(&mut stats, &syms, "c", &c_refs);
        let plan = plan(&c.body, c.var_count, None, &stats).unwrap();
        // First pick: a and b tie at cost 3, a wins by source order. After X
        // is bound, b (3 tuples) ties with c (9 / 3 distinct X values): b
        // wins by source order again.
        assert_eq!(pred_names(&syms, &plan), vec!["a", "b", "c"]);
    }

    #[test]
    fn unknown_predicates_cost_more_than_any_known_relation() {
        // `derived` never appears in the stats (an IDB predicate during
        // scratch grounding): it must not jump ahead of known relations.
        let (syms, c) = compiled("h(X) :- derived(X), known(X).");
        let mut stats = RelationStats::new();
        fill(&mut stats, &syms, "known", &[&[1], &[2], &[3], &[4]]);
        let plan = plan(&c.body, c.var_count, None, &stats).unwrap();
        assert_eq!(pred_names(&syms, &plan), vec!["known", "derived"]);
    }

    #[test]
    fn forced_first_and_safety_are_cost_independent() {
        let (syms, c) = compiled("h(X) :- a(X), b(X).");
        let stats = RelationStats::new();
        let p = plan(&c.body, c.var_count, Some(1), &stats).unwrap();
        assert_eq!(pred_names(&syms, &p), vec!["b", "a"], "the forced literal stays first");
        // An unsafe body fails identically under any cost source.
        let syms2 = Symbols::new();
        let rule = parse_rule(&syms2, "p :- q(X), X < Y.").unwrap();
        assert!(compile_rule(&syms2, &rule, 0).is_err());
    }

    #[test]
    fn negation_and_comparisons_keep_their_phases() {
        let (syms, c) = compiled("h(X) :- not blocked(X), obs(X,Y), Y < 20, tiny(X).");
        let mut stats = RelationStats::new();
        let obs: Vec<Vec<i64>> = (0..40).map(|i| vec![i, i]).collect();
        let obs_refs: Vec<&[i64]> = obs.iter().map(Vec::as_slice).collect();
        fill(&mut stats, &syms, "obs", &obs_refs);
        fill(&mut stats, &syms, "tiny", &[&[1]]);
        let plan = plan(&c.body, c.var_count, None, &stats).unwrap();
        assert_eq!(pred_names(&syms, &plan), vec!["tiny", "obs"]);
        assert!(
            matches!(plan.last(), Some(Step::NegCheck { .. })),
            "fully bound negation stays last regardless of cost"
        );
        assert!(plan.iter().any(|s| matches!(s, Step::Compare { .. })));
        let cmp_pos = plan.iter().position(|s| matches!(s, Step::Compare { .. })).unwrap();
        let obs_pos = plan
            .iter()
            .position(|s| matches!(s, Step::Match { atom, .. } if &*syms.resolve(atom.pred.name) == "obs"))
            .unwrap();
        assert!(cmp_pos > obs_pos, "the comparison runs as soon as Y is bound");
    }
}
