//! Cheap per-predicate relation statistics feeding the cost-based join
//! planner ([`crate::planner`]).
//!
//! [`RelationStats`] tracks, per predicate, the tuple cardinality and the
//! number of distinct values at every argument position. Both are
//! maintainable in O(arity) per insert/tombstone (the delta-grounding path)
//! or in one pass over a fact window (the scratch path, via
//! [`RelationStats::rebase`]). A generation counter tells consumers when
//! the numbers have drifted far enough that plans built against older stats
//! are worth rebuilding; the 2×-with-slack hysteresis of
//! `RelationStats::drifted` bounds the replan rate — a relation growing
//! 0 → N bumps the generation O(log N) times, and windows with stable
//! cardinalities never bump it at all.

use asp_core::{FastMap, GroundAtom, GroundTerm, Predicate};
use std::hash::{Hash, Hasher};

/// Additive slack in the drift test: relations this small never trigger a
/// replan on their own (the syntactic plan is fine for toy cardinalities,
/// and without slack every 0 → 1 insert would bump the generation).
const DRIFT_SLACK: u64 = 8;

/// Per-predicate counters. `positions[i]` maps a value hash to its
/// multiplicity at argument position `i`, so `positions[i].len()` is the
/// distinct-value count the planner divides by.
#[derive(Debug, Default)]
struct PredStats {
    cardinality: u64,
    /// Cardinality at the last generation bump — the anchor of the drift
    /// hysteresis.
    planned: u64,
    positions: Vec<FastMap<u64, u32>>,
}

impl PredStats {
    fn with_arity(arity: usize) -> Self {
        PredStats { cardinality: 0, planned: 0, positions: vec![FastMap::default(); arity] }
    }
}

/// Hash identity of one ground term: collisions only make a distinct count
/// conservative (an undercount), which costs plan quality, never
/// correctness.
fn term_key(t: &GroundTerm) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// Incrementally maintained cardinality + per-position distinct-value
/// statistics over a set of relations. See the module docs for the drift /
/// generation contract.
#[derive(Debug, Default)]
pub struct RelationStats {
    per_pred: FastMap<Predicate, PredStats>,
    generation: u64,
}

impl RelationStats {
    /// Empty statistics at generation 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The 2×-with-slack hysteresis: true when `current` has moved far
    /// enough from `planned` that plans built against `planned` are stale.
    fn drifted(current: u64, planned: u64) -> bool {
        current > planned * 2 + DRIFT_SLACK || planned > current * 2 + DRIFT_SLACK
    }

    /// Records one inserted tuple, bumping the generation when the
    /// predicate's cardinality drifts past the hysteresis threshold.
    pub fn insert(&mut self, pred: Predicate, args: &[GroundTerm]) {
        let s = self.per_pred.entry(pred).or_insert_with(|| PredStats::with_arity(args.len()));
        s.cardinality += 1;
        for (pos, t) in args.iter().enumerate() {
            *s.positions[pos].entry(term_key(t)).or_insert(0) += 1;
        }
        if Self::drifted(s.cardinality, s.planned) {
            s.planned = s.cardinality;
            self.generation += 1;
        }
    }

    /// Records one removed tuple (the counterpart of
    /// [`RelationStats::insert`]); removing a tuple that was never recorded
    /// is a caller bug and is ignored in release builds.
    pub fn remove(&mut self, pred: Predicate, args: &[GroundTerm]) {
        let Some(s) = self.per_pred.get_mut(&pred) else {
            debug_assert!(false, "stats remove for an unknown predicate");
            return;
        };
        debug_assert!(s.cardinality > 0, "stats remove below zero");
        s.cardinality = s.cardinality.saturating_sub(1);
        for (pos, t) in args.iter().enumerate() {
            if let Some(count) = s.positions[pos].get_mut(&term_key(t)) {
                *count -= 1;
                if *count == 0 {
                    s.positions[pos].remove(&term_key(t));
                }
            }
        }
        if Self::drifted(s.cardinality, s.planned) {
            s.planned = s.cardinality;
            self.generation += 1;
        }
    }

    /// Rebuilds the counters from a full fact window in one pass (the
    /// scratch-grounding entry point). Each predicate's drift anchor is
    /// kept across rebases, so a sequence of windows with stable
    /// cardinalities bumps the generation at most once, however many times
    /// it is called.
    pub fn rebase(&mut self, facts: &[GroundAtom]) {
        for s in self.per_pred.values_mut() {
            s.cardinality = 0;
            for m in &mut s.positions {
                m.clear();
            }
        }
        for f in facts {
            let s = self
                .per_pred
                .entry(f.predicate())
                .or_insert_with(|| PredStats::with_arity(f.args.len()));
            s.cardinality += 1;
            for (pos, t) in f.args.iter().enumerate() {
                *s.positions[pos].entry(term_key(t)).or_insert(0) += 1;
            }
        }
        let mut drift = false;
        for s in self.per_pred.values_mut() {
            if Self::drifted(s.cardinality, s.planned) {
                s.planned = s.cardinality;
                drift = true;
            }
        }
        if drift {
            self.generation += 1;
        }
    }

    /// Drops every counter and bumps the generation once, so consumers
    /// replan (at most once) after a reset.
    pub fn clear(&mut self) {
        self.per_pred.clear();
        self.generation += 1;
    }

    /// Monotone counter bumped whenever cardinalities drift past the
    /// hysteresis threshold; equal generations guarantee unchanged plans.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Tuple count of `pred`; `None` when the predicate has never been
    /// observed (as opposed to observed and currently empty).
    pub fn cardinality(&self, pred: Predicate) -> Option<u64> {
        self.per_pred.get(&pred).map(|s| s.cardinality)
    }

    /// Distinct values at argument position `pos` of `pred` (0 when the
    /// predicate or position is unknown).
    pub fn distinct(&self, pred: Predicate, pos: usize) -> u64 {
        self.per_pred.get(&pred).and_then(|s| s.positions.get(pos)).map_or(0, |m| m.len() as u64)
    }

    /// Largest observed cardinality across all predicates — the
    /// pessimistic default for predicates the stats know nothing about.
    pub fn max_cardinality(&self) -> u64 {
        self.per_pred.values().map(|s| s.cardinality).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp_core::Symbols;

    fn atom(syms: &Symbols, name: &str, args: &[i64]) -> GroundAtom {
        GroundAtom::new(syms.intern(name), args.iter().map(|&a| GroundTerm::Int(a)).collect())
    }

    #[test]
    fn insert_and_remove_track_cardinality_and_distinct() {
        let syms = Symbols::new();
        let mut stats = RelationStats::new();
        let a = atom(&syms, "edge", &[1, 2]);
        let b = atom(&syms, "edge", &[1, 3]);
        stats.insert(a.predicate(), &a.args);
        stats.insert(b.predicate(), &b.args);
        assert_eq!(stats.cardinality(a.predicate()), Some(2));
        assert_eq!(stats.distinct(a.predicate(), 0), 1, "both tuples share position 0");
        assert_eq!(stats.distinct(a.predicate(), 1), 2);
        stats.remove(b.predicate(), &b.args);
        assert_eq!(stats.cardinality(a.predicate()), Some(1));
        assert_eq!(stats.distinct(a.predicate(), 1), 1);
        assert_eq!(stats.cardinality(atom(&syms, "other", &[1]).predicate()), None);
    }

    #[test]
    fn generation_bumps_are_logarithmic_in_growth() {
        let syms = Symbols::new();
        let mut stats = RelationStats::new();
        let pred = atom(&syms, "p", &[0]).predicate();
        for i in 0..10_000i64 {
            let f = atom(&syms, "p", &[i]);
            stats.insert(pred, &f.args);
        }
        let gen = stats.generation();
        assert!(gen >= 1, "growing 0 -> 10k must drift at least once");
        assert!(gen <= 16, "hysteresis must bound bumps to O(log n), got {gen}");
    }

    #[test]
    fn small_relations_never_bump_the_generation() {
        let syms = Symbols::new();
        let mut stats = RelationStats::new();
        for i in 0..8i64 {
            let f = atom(&syms, "tiny", &[i]);
            stats.insert(f.predicate(), &f.args);
        }
        assert_eq!(stats.generation(), 0, "within the slack no replan is worth it");
    }

    #[test]
    fn rebase_is_stable_across_identical_windows() {
        let syms = Symbols::new();
        let mut stats = RelationStats::new();
        let window: Vec<GroundAtom> =
            (0..100i64).map(|i| atom(&syms, "obs", &[i, i % 7])).collect();
        stats.rebase(&window);
        let gen = stats.generation();
        assert_eq!(gen, 1, "the first sizable window drifts from empty exactly once");
        for _ in 0..20 {
            stats.rebase(&window);
        }
        assert_eq!(stats.generation(), gen, "identical windows must not thrash the generation");
        assert_eq!(stats.cardinality(window[0].predicate()), Some(100));
        assert_eq!(stats.distinct(window[0].predicate(), 1), 7);
        // A window of a very different size drifts again — once.
        stats.rebase(&window[..4]);
        assert_eq!(stats.generation(), gen + 1);
    }

    #[test]
    fn clear_bumps_once_and_forgets_everything() {
        let syms = Symbols::new();
        let mut stats = RelationStats::new();
        let f = atom(&syms, "p", &[1]);
        stats.insert(f.predicate(), &f.args);
        let gen = stats.generation();
        stats.clear();
        assert_eq!(stats.generation(), gen + 1);
        assert_eq!(stats.cardinality(f.predicate()), None);
        assert_eq!(stats.max_cardinality(), 0);
    }
}
