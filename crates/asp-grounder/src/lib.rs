//! Instantiation (grounding) engine for ASP programs.
//!
//! The grounder follows the standard two-phase architecture of DLV/clingo
//! (the solvers StreamRule builds on): rules are compiled with a safety check
//! and a greedy join order, predicates are stratified into strongly connected
//! components of the dependency graph, and each component is evaluated with
//! semi-naive iteration over binding-pattern hash indexes. A final
//! certain/possible simplification pass (see [`simplify`]) shrinks the ground
//! program before it reaches the solver.
//!
//! Design-time/run-time split: [`Grounder::new`] does all per-program work
//! once, [`Grounder::ground`] is called per input window.

#![warn(missing_docs)]

pub mod analysis;
pub mod compile;
pub mod delta;
pub mod instantiate;
pub mod planner;
pub mod relation;
pub mod simplify;
pub mod stats;

pub use analysis::{
    grounding_bounds, DeltaStateBound, DeltaStateSize, EvalStratum, GroundingBounds, MemoryBound,
    PredicateExtent, RuleBound,
};
pub use delta::{DeltaError, DeltaGrounder};
pub use instantiate::{ground_program, is_internal_predicate, Grounder};
pub use planner::{CostSource, SyntacticCost};
pub use simplify::{finalize_refs, ProtoRule};
pub use stats::RelationStats;
