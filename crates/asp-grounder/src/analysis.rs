//! Static memory-bound and evaluation-order analysis.
//!
//! Computed from the rule set and a window-capacity model **before any
//! window is processed** (the RTLola move: per-stream space requirements
//! and a worst-case memory bound read off the dependency graph ahead of
//! execution). The bound counts *cells* — ground atoms, relation tuple
//! slots and rule instantiations — not bytes, so it is stable across
//! allocator and layout changes while still ordering programs by state
//! footprint.
//!
//! Soundness model (what [`grounding_bounds`] promises):
//!
//! * every **input** predicate's extent is capped by the window capacity
//!   the caller supplies (a window with `n` items can assert at most `n`
//!   facts of any one predicate);
//! * a **non-recursive derived** predicate's extent is the sum over its
//!   rules of the rule's instantiation bound (each instantiation derives
//!   at most one atom per head atom);
//! * a **rule's** instantiation bound is the product of the extents of its
//!   positive body atoms that carry variables (instantiations are keyed by
//!   variable bindings, and bindings come from joins over the positive
//!   body; ground atoms and negative/comparison literals never multiply);
//! * predicates on a **dependency cycle** fall back to the Herbrand bound
//!   `C^arity`, where `C` counts the constants nameable from the program
//!   text plus the window (each input fact contributes at most `arity`
//!   fresh constants);
//! * the [`DeltaGrounder`](crate::delta::DeltaGrounder) slot stores keep
//!   `slots ≤ 2 × live + 1` by their amortized-compaction invariants
//!   (`DRel::remove` rebuilds once dead slots outnumber live ones,
//!   `process_dead` compacts once dead instantiations outnumber live
//!   ones), which is where the tombstone-slack factor 2 comes from.
//!
//! Arithmetic saturates to [`MemoryBound::Unbounded`] on `u128` overflow
//! instead of wrapping: a bound too large to represent is reported as
//! unbounded, never as a small lie.

use crate::stats::RelationStats;
use asp_core::{FastMap, Predicate, Program, Symbols, Term};
use sr_graph::{tarjan_scc, DiGraph};
use std::fmt;

/// A worst-case space requirement in cells, or `Unbounded` when no finite
/// `u128` bound exists (overflow during bound arithmetic saturates here).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemoryBound {
    /// At most this many cells.
    Bounded(u128),
    /// No finite bound representable.
    Unbounded,
}

impl MemoryBound {
    /// The cell count, or `None` for `Unbounded`.
    pub fn cells(self) -> Option<u128> {
        match self {
            MemoryBound::Bounded(n) => Some(n),
            MemoryBound::Unbounded => None,
        }
    }

    /// Saturating power.
    pub fn pow(self, exp: u32) -> MemoryBound {
        let mut acc = MemoryBound::Bounded(1);
        for _ in 0..exp {
            acc = acc * self;
        }
        acc
    }

    /// The smaller of the two bounds (`Unbounded` is the top element).
    pub fn tighten(self, other: MemoryBound) -> MemoryBound {
        match (self, other) {
            (MemoryBound::Bounded(a), MemoryBound::Bounded(b)) => MemoryBound::Bounded(a.min(b)),
            (MemoryBound::Bounded(a), _) | (_, MemoryBound::Bounded(a)) => MemoryBound::Bounded(a),
            _ => MemoryBound::Unbounded,
        }
    }

    /// True when the bound exceeds `budget` cells (`Unbounded` always does).
    pub fn exceeds(self, budget: u64) -> bool {
        match self {
            MemoryBound::Bounded(n) => n > u128::from(budget),
            MemoryBound::Unbounded => true,
        }
    }
}

/// Saturating sum: overflow and `Unbounded` operands yield `Unbounded`.
impl std::ops::Add for MemoryBound {
    type Output = MemoryBound;

    fn add(self, other: MemoryBound) -> MemoryBound {
        match (self, other) {
            (MemoryBound::Bounded(a), MemoryBound::Bounded(b)) => match a.checked_add(b) {
                Some(s) => MemoryBound::Bounded(s),
                None => MemoryBound::Unbounded,
            },
            _ => MemoryBound::Unbounded,
        }
    }
}

/// Saturating product: overflow and `Unbounded` operands yield `Unbounded`.
impl std::ops::Mul for MemoryBound {
    type Output = MemoryBound;

    fn mul(self, other: MemoryBound) -> MemoryBound {
        match (self, other) {
            (MemoryBound::Bounded(a), MemoryBound::Bounded(b)) => match a.checked_mul(b) {
                Some(p) => MemoryBound::Bounded(p),
                None => MemoryBound::Unbounded,
            },
            _ => MemoryBound::Unbounded,
        }
    }
}

impl fmt::Display for MemoryBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryBound::Bounded(n) => write!(f, "{n}"),
            MemoryBound::Unbounded => f.write_str("unbounded"),
        }
    }
}

/// One stratum of the evaluation order: a strongly connected component of
/// the predicate dependency graph. Strata are emitted dependencies-first;
/// evaluating them in order visits every body predicate before the heads
/// it feeds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalStratum {
    /// Member predicate names, sorted.
    pub predicates: Vec<String>,
    /// True when the stratum is a genuine cycle (recursion).
    pub recursive: bool,
    /// True when a default-negated edge closes the cycle — the program is
    /// then not stratified and has no unique perfect model.
    pub negation_cycle: bool,
}

/// Worst-case extent (number of distinct ground atoms) of one predicate.
#[derive(Clone, Debug)]
pub struct PredicateExtent {
    /// Predicate name.
    pub name: String,
    /// Arity.
    pub arity: u32,
    /// The input (window-fed) share of the extent.
    pub input: u64,
    /// The derived share of the extent.
    pub derived: MemoryBound,
    /// Total extent: `input + derived`.
    pub extent: MemoryBound,
}

/// Worst-case instantiation count of one rule.
#[derive(Clone, Debug)]
pub struct RuleBound {
    /// Rule index in program order.
    pub index: usize,
    /// Head predicate name, or `None` for a constraint.
    pub head: Option<String>,
    /// Worst-case instantiations (product of positive-body extents).
    pub instantiations: MemoryBound,
}

/// Worst-case [`DeltaGrounder`](crate::delta::DeltaGrounder) state for one
/// partition, component by component. All components are simultaneous
/// bounds on the post-`apply` state.
#[derive(Clone, Copy, Debug)]
pub struct DeltaStateBound {
    /// Asserted input facts (multiset size ≤ window capacity).
    pub input_facts: MemoryBound,
    /// Live rule instantiations (Σ rule bounds).
    pub live_instantiations: MemoryBound,
    /// Instantiation slots including tombstones (`≤ 2 × live + 1`).
    pub instantiation_slots: MemoryBound,
    /// Support-counter map entries (distinct possible-set atoms).
    pub support_atoms: MemoryBound,
    /// Relation tuple slots including tombstones across all predicates.
    pub relation_slots: MemoryBound,
    /// Sum of the four stores: the partition's state cells.
    pub total_cells: MemoryBound,
}

/// Observed [`DeltaGrounder`](crate::delta::DeltaGrounder) state sizes —
/// the measurable counterpart of [`DeltaStateBound`], read with
/// [`DeltaGrounder::state_size`](crate::delta::DeltaGrounder::state_size).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStateSize {
    /// Facts currently asserted (multiset size).
    pub input_facts: usize,
    /// Live rule instantiations.
    pub live_instantiations: usize,
    /// Instantiation slots including tombstones.
    pub instantiation_slots: usize,
    /// Support-counter map entries.
    pub support_atoms: usize,
    /// Relation tuple slots including tombstones.
    pub relation_slots: usize,
}

impl DeltaStateSize {
    /// Sum of the four stores, mirroring [`DeltaStateBound::total_cells`].
    pub fn total_cells(&self) -> u128 {
        self.input_facts as u128
            + self.instantiation_slots as u128
            + self.support_atoms as u128
            + self.relation_slots as u128
    }

    /// Component-wise maximum (peak tracking across windows).
    pub fn max(self, other: DeltaStateSize) -> DeltaStateSize {
        DeltaStateSize {
            input_facts: self.input_facts.max(other.input_facts),
            live_instantiations: self.live_instantiations.max(other.live_instantiations),
            instantiation_slots: self.instantiation_slots.max(other.instantiation_slots),
            support_atoms: self.support_atoms.max(other.support_atoms),
            relation_slots: self.relation_slots.max(other.relation_slots),
        }
    }

    /// True when every component respects `bound` (an `Unbounded`
    /// component is never violated).
    pub fn within(&self, bound: &DeltaStateBound) -> bool {
        let le = |obs: usize, b: MemoryBound| match b {
            MemoryBound::Bounded(n) => obs as u128 <= n,
            MemoryBound::Unbounded => true,
        };
        le(self.input_facts, bound.input_facts)
            && le(self.live_instantiations, bound.live_instantiations)
            && le(self.instantiation_slots, bound.instantiation_slots)
            && le(self.support_atoms, bound.support_atoms)
            && le(self.relation_slots, bound.relation_slots)
            && match bound.total_cells {
                MemoryBound::Bounded(n) => self.total_cells() <= n,
                MemoryBound::Unbounded => true,
            }
    }
}

/// The full grounding-level analysis artifact for one partition's view of
/// the program.
#[derive(Clone, Debug)]
pub struct GroundingBounds {
    /// Stratified evaluation order, dependencies first.
    pub order: Vec<EvalStratum>,
    /// Per-predicate worst-case extents, in program first-occurrence order.
    pub extents: Vec<PredicateExtent>,
    /// Per-rule worst-case instantiation counts, in program order.
    pub rule_bounds: Vec<RuleBound>,
    /// Σ rule bounds: the worst-case ground-program size.
    pub instantiation_bound: MemoryBound,
    /// The delta-grounder state bound assembled from the pieces above.
    pub state: DeltaStateBound,
    /// True when no cycle runs through default negation.
    pub stratified: bool,
}

impl GroundingBounds {
    /// The rule with the largest instantiation bound, if any rule has a
    /// nonzero bound.
    pub fn dominating_rule(&self) -> Option<&RuleBound> {
        self.rule_bounds.iter().max_by(|a, b| match (a.instantiations, b.instantiations) {
            (MemoryBound::Unbounded, MemoryBound::Unbounded) => std::cmp::Ordering::Equal,
            (MemoryBound::Unbounded, _) => std::cmp::Ordering::Greater,
            (_, MemoryBound::Unbounded) => std::cmp::Ordering::Less,
            (MemoryBound::Bounded(x), MemoryBound::Bounded(y)) => x.cmp(&y),
        })
    }
}

/// Counts the distinct constants (symbolic or integer) nameable from the
/// rule text: the program's share of the Herbrand universe.
fn program_constants(program: &Program) -> u64 {
    use std::collections::BTreeSet;
    let mut consts: BTreeSet<(u8, i64, u64)> = BTreeSet::new();
    fn walk(t: &Term, out: &mut BTreeSet<(u8, i64, u64)>) {
        match t {
            Term::Const(s) => {
                out.insert((0, 0, s.0 as u64));
            }
            Term::Int(i) => {
                out.insert((1, *i, 0));
            }
            Term::Var(_) => {}
            Term::Func(_, args) => {
                for a in args {
                    walk(a, out);
                }
            }
            Term::BinOp(_, l, r) => {
                walk(l, out);
                walk(r, out);
            }
            // Intervals are expanded by the parser; count endpoints anyway.
            Term::Interval(lo, hi) => {
                out.insert((1, *lo, 0));
                out.insert((1, *hi, 0));
            }
        }
    }
    for rule in &program.rules {
        for a in rule.head.atoms() {
            for t in &a.args {
                walk(t, &mut consts);
            }
        }
        for l in &rule.body {
            if let Some((a, _)) = l.as_atom() {
                for t in &a.args {
                    walk(t, &mut consts);
                }
            }
        }
    }
    consts.len() as u64
}

/// Computes the worst-case grounding and delta-state bounds of `program`
/// under a window-capacity model.
///
/// * `window_capacity` — the largest number of items one window can route
///   to this partition (bounds the input-fact multiset and every input
///   predicate's extent).
/// * `input_extent(p)` — `Some(n)` caps predicate `p`'s window-fed extent
///   at `n` facts (`None` means `p` is derived-only). Callers model
///   partitioning here: a predicate routed to another partition gets
///   `Some(0)`.
/// * `stats` — live [`RelationStats`], when available, tighten input
///   extents to the currently observed cardinalities. The tightened bound
///   is sound **for the current fact multiset only**; admission-time and
///   CI bounds must pass `None` to keep the worst-case guarantee.
pub fn grounding_bounds(
    syms: &Symbols,
    program: &Program,
    window_capacity: u64,
    input_extent: &dyn Fn(&Predicate) -> Option<u64>,
    stats: Option<&RelationStats>,
) -> GroundingBounds {
    let preds = program.predicates();
    let mut index: FastMap<Predicate, usize> = FastMap::default();
    for (i, p) in preds.iter().enumerate() {
        index.insert(*p, i);
    }

    // Predicate dependency graph: body → head, negation edges remembered.
    let mut graph = DiGraph::new(preds.len());
    let mut neg_edges: Vec<(usize, usize)> = Vec::new();
    for rule in &program.rules {
        for head in rule.head.atoms() {
            let h = index[&head.predicate()];
            for b in rule.pos_body() {
                graph.add_edge(index[&b.predicate()], h);
            }
            for b in rule.neg_body() {
                let u = index[&b.predicate()];
                graph.add_edge(u, h);
                neg_edges.push((u, h));
            }
        }
    }

    // Tarjan emits components in reverse topological order for body→head
    // edges; walking the result backwards visits dependencies first.
    let sccs = tarjan_scc(&graph);
    let mut scc_of = vec![0usize; preds.len()];
    for (ci, comp) in sccs.iter().enumerate() {
        for &n in comp {
            scc_of[n] = ci;
        }
    }

    // Herbrand constant budget: program text + what the window can name.
    let herbrand_constants = {
        let mut c = MemoryBound::Bounded(u128::from(program_constants(program)));
        for p in &preds {
            if let Some(ext) = input_extent(p) {
                c = c + MemoryBound::Bounded(u128::from(ext.min(window_capacity)))
                    * MemoryBound::Bounded(u128::from(p.arity.max(1)));
            }
        }
        c
    };

    let input_of = |p: &Predicate| -> u64 {
        let raw = input_extent(p).unwrap_or(0).min(window_capacity);
        match stats.and_then(|s| s.cardinality(*p)) {
            Some(live) if input_extent(p).is_some() => raw.min(live),
            _ => raw,
        }
    };

    // Rule instantiation bound given the current extent table: product of
    // the positive body atoms that carry variables (bindings come only
    // from those joins).
    let rule_bound = |rule: &asp_core::Rule, extents: &[MemoryBound]| -> MemoryBound {
        let mut b = MemoryBound::Bounded(1);
        for atom in rule.pos_body() {
            if atom.is_ground() {
                continue;
            }
            b = b * extents[index[&atom.predicate()]];
        }
        b
    };

    // Extents, dependencies first. A cyclic component falls back to the
    // Herbrand bound; an acyclic one sums its rules' bounds.
    let mut extents: Vec<MemoryBound> =
        preds.iter().map(|p| MemoryBound::Bounded(u128::from(input_of(p)))).collect();
    let mut derived: Vec<MemoryBound> = vec![MemoryBound::Bounded(0); preds.len()];
    let mut order = Vec::with_capacity(sccs.len());
    for comp in sccs.iter().rev() {
        let recursive = comp.len() > 1 || graph.has_edge(comp[0], comp[0]);
        let negation_cycle = recursive
            && neg_edges
                .iter()
                .any(|(u, v)| scc_of[*u] == scc_of[comp[0]] && scc_of[*v] == scc_of[comp[0]]);
        for &n in comp {
            let pred = preds[n];
            let d = if recursive {
                herbrand_constants.pow(pred.arity)
            } else {
                let mut sum = MemoryBound::Bounded(0);
                for rule in &program.rules {
                    let copies = rule.head.atoms().iter().filter(|a| a.predicate() == pred).count();
                    if copies > 0 {
                        sum =
                            sum + rule_bound(rule, &extents) * MemoryBound::Bounded(copies as u128);
                    }
                }
                sum
            };
            derived[n] = d;
            extents[n] = extents[n] + d;
        }
        let mut names: Vec<String> =
            comp.iter().map(|&n| syms.resolve(preds[n].name).to_string()).collect();
        names.sort_unstable();
        order.push(EvalStratum { predicates: names, recursive, negation_cycle });
    }

    // Per-rule bounds with the final extent table.
    let mut rule_bounds = Vec::with_capacity(program.rules.len());
    let mut instantiation_bound = MemoryBound::Bounded(0);
    for (i, rule) in program.rules.iter().enumerate() {
        let b = rule_bound(rule, &extents);
        instantiation_bound = instantiation_bound + b;
        let head = rule.head.atoms().first().map(|a| syms.resolve(a.predicate().name).to_string());
        rule_bounds.push(RuleBound { index: i, head, instantiations: b });
    }

    // Delta-state assembly. Input atoms of *any* predicate (including ones
    // no rule mentions) are asserted into the fact store and support map,
    // so the window capacity — not the per-predicate sum — caps those.
    let cap = MemoryBound::Bounded(u128::from(window_capacity));
    let derived_sum = derived.iter().fold(MemoryBound::Bounded(0), |acc, d| acc + *d);
    let two = MemoryBound::Bounded(2);
    let live_tuples = cap + derived_sum;
    let state = DeltaStateBound {
        input_facts: cap,
        live_instantiations: instantiation_bound,
        instantiation_slots: instantiation_bound * two + MemoryBound::Bounded(1),
        support_atoms: live_tuples,
        relation_slots: live_tuples * two + MemoryBound::Bounded(preds.len() as u128 + 1),
        total_cells: MemoryBound::Bounded(0),
    };
    let state = DeltaStateBound {
        total_cells: state.input_facts
            + state.instantiation_slots
            + state.support_atoms
            + state.relation_slots,
        ..state
    };

    let extent_rows = preds
        .iter()
        .enumerate()
        .map(|(i, p)| PredicateExtent {
            name: syms.resolve(p.name).to_string(),
            arity: p.arity,
            input: input_of(p),
            derived: derived[i],
            extent: extents[i],
        })
        .collect();

    GroundingBounds {
        order,
        extents: extent_rows,
        rule_bounds,
        instantiation_bound,
        state,
        stratified: {
            let mut ok = true;
            for (u, v) in &neg_edges {
                if scc_of[*u] == scc_of[*v] {
                    ok = false;
                }
            }
            ok
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp_parser::parse_program;

    const PROGRAM_P: &str = r#"
        very_slow_speed(X) :- average_speed(X,Y), Y < 20.
        many_cars(X) :- car_number(X,Y), Y > 40.
        traffic_jam(X) :- very_slow_speed(X), many_cars(X), not traffic_light(X).
        give_notification(X) :- traffic_jam(X).
    "#;

    fn bounds(src: &str, capacity: u64) -> (Symbols, GroundingBounds) {
        let syms = Symbols::new();
        let program = parse_program(&syms, src).unwrap();
        let edb = program.edb_predicates();
        let b = grounding_bounds(
            &syms,
            &program,
            capacity,
            &|p| edb.contains(p).then_some(capacity),
            None,
        );
        (syms, b)
    }

    #[test]
    fn acyclic_program_is_finitely_bounded() {
        let (_syms, b) = bounds(PROGRAM_P, 100);
        assert!(b.stratified);
        assert!(b.order.iter().all(|s| !s.recursive));
        let total = b.instantiation_bound.cells().unwrap();
        // 4 rules: 100 + 100 + 100*100*100 (jam joins two derived extents
        // of ≤100 each... the jam rule's body extents are the derived
        // extents) + jam extent; just sanity-check finiteness and order.
        assert!(total > 0);
        assert!(b.state.total_cells.cells().is_some());
    }

    #[test]
    fn extents_cap_at_window_capacity_for_inputs() {
        let (_syms, b) = bounds(PROGRAM_P, 7);
        for row in &b.extents {
            if row.derived == MemoryBound::Bounded(0) {
                assert!(row.input <= 7, "{row:?}");
            }
        }
    }

    #[test]
    fn evaluation_order_is_dependencies_first() {
        let (_syms, b) = bounds(PROGRAM_P, 10);
        let pos = |name: &str| {
            b.order.iter().position(|s| s.predicates.iter().any(|p| p == name)).unwrap()
        };
        assert!(pos("average_speed") < pos("very_slow_speed"));
        assert!(pos("very_slow_speed") < pos("traffic_jam"));
        assert!(pos("traffic_jam") < pos("give_notification"));
    }

    #[test]
    fn recursion_falls_back_to_the_herbrand_bound() {
        let src = "reach(X,Y) :- edge(X,Y).\nreach(X,Z) :- reach(X,Y), edge(Y,Z).\n";
        let (_syms, b) = bounds(src, 5);
        let reach = b.extents.iter().find(|e| e.name == "reach").unwrap();
        // C = 5 input facts × arity 2 = 10 constants; C^2 = 100.
        assert_eq!(reach.derived, MemoryBound::Bounded(100));
        assert!(b.order.iter().any(|s| s.recursive));
        assert!(b.stratified);
    }

    #[test]
    fn negation_cycle_is_flagged_unstratified() {
        let src = "a(X) :- base(X), not b(X).\nb(X) :- base(X), not a(X).\n";
        let (_syms, b) = bounds(src, 3);
        assert!(!b.stratified);
        assert!(b.order.iter().any(|s| s.negation_cycle));
    }

    #[test]
    fn overflow_saturates_to_unbounded() {
        // A 12-way self-join over a huge window overflows u128.
        let mut src = String::from("big(A0) :- ");
        let body: Vec<String> = (0..12).map(|i| format!("wide(A{i})")).collect();
        src.push_str(&body.join(", "));
        src.push_str(".\n");
        let (_syms, b) = bounds(&src, u64::MAX);
        assert_eq!(b.instantiation_bound, MemoryBound::Unbounded);
        assert_eq!(b.state.total_cells, MemoryBound::Unbounded);
        assert_eq!(b.state.total_cells.to_string(), "unbounded");
    }

    #[test]
    fn stats_tighten_input_extents() {
        let syms = Symbols::new();
        let program = parse_program(&syms, PROGRAM_P).unwrap();
        let edb = program.edb_predicates();
        let loose =
            grounding_bounds(&syms, &program, 1000, &|p| edb.contains(p).then_some(1000), None);
        let mut stats = RelationStats::new();
        // Live store holds only 2 average_speed facts.
        let speed = edb.iter().find(|p| &*syms.resolve(p.name) == "average_speed").unwrap();
        use asp_core::GroundTerm;
        stats.insert(*speed, &[GroundTerm::Int(1), GroundTerm::Int(10)]);
        stats.insert(*speed, &[GroundTerm::Int(2), GroundTerm::Int(15)]);
        let tight = grounding_bounds(
            &syms,
            &program,
            1000,
            &|p| edb.contains(p).then_some(1000),
            Some(&stats),
        );
        let ext = |b: &GroundingBounds, name: &str| {
            b.extents.iter().find(|e| e.name == name).unwrap().input
        };
        assert_eq!(ext(&loose, "average_speed"), 1000);
        assert_eq!(ext(&tight, "average_speed"), 2);
        assert_eq!(ext(&tight, "car_number"), 1000, "no stats entry leaves the cap");
    }

    #[test]
    fn bound_arithmetic_is_saturating() {
        let top = MemoryBound::Bounded(u128::MAX);
        assert_eq!(top + MemoryBound::Bounded(1), MemoryBound::Unbounded);
        assert_eq!(top * MemoryBound::Bounded(2), MemoryBound::Unbounded);
        assert_eq!(
            MemoryBound::Unbounded.tighten(MemoryBound::Bounded(4)),
            MemoryBound::Bounded(4)
        );
        assert!(MemoryBound::Unbounded.exceeds(u64::MAX));
        assert!(!MemoryBound::Bounded(10).exceeds(10));
        assert!(MemoryBound::Bounded(11).exceeds(10));
    }
}
