//! Post-grounding simplification: the certain/possible analysis that turns
//! proto rules into the final ground program, mirroring what production
//! grounders (gringo, DLV) do after instantiation.
//!
//! * an atom is **possible** when it occurs in some relation (facts plus any
//!   rule head instance) — the over-approximation of what can be true;
//! * an atom is **certain** when it is derivable through rules whose positive
//!   body is certain and whose default-negated atoms are not even possible —
//!   such atoms hold in every stable model.
//!
//! Simplifications applied, each standard and model-preserving:
//! * `not b` with `b` not possible → literal deleted (vacuously true);
//! * `not b` with `b` certain → rule deleted (can never fire);
//! * positive `b` with `b` certain → literal deleted (already supported);
//! * single-head rule whose head is certain → rule replaced by the fact;
//! * multi-head rule with a certain head → rule deleted (already satisfied).

use crate::relation::Relation;
use asp_core::{AtomId, FastMap, FastSet, GroundAtom, GroundProgram, GroundRule, Predicate};

/// A ground rule instance before simplification, over concrete atoms.
#[derive(Clone, Debug)]
pub struct ProtoRule {
    /// Head atoms (empty = constraint).
    pub heads: Vec<GroundAtom>,
    /// Positive body.
    pub pos: Vec<GroundAtom>,
    /// Default-negated body.
    pub neg: Vec<GroundAtom>,
}

/// Runs the certain/possible simplification and builds the final
/// [`GroundProgram`].
pub fn finalize(relations: &FastMap<Predicate, Relation>, proto: Vec<ProtoRule>) -> GroundProgram {
    let possible = |a: &GroundAtom| -> bool {
        relations.get(&a.predicate()).is_some_and(|r| r.contains(&a.args))
    };
    let refs: Vec<&ProtoRule> = proto.iter().collect();
    finalize_refs(&possible, &refs)
}

/// Re-entrant form of [`finalize`]: the possible-set is an arbitrary
/// predicate and the proto rules are borrowed, so a caller that *maintains*
/// its proto rules across windows (the delta grounder,
/// [`crate::delta::DeltaGrounder`]) can re-run the simplification without
/// rebuilding or mutating its state. Behavior is identical to [`finalize`].
pub fn finalize_refs(
    possible: &dyn Fn(&GroundAtom) -> bool,
    proto: &[&ProtoRule],
) -> GroundProgram {
    // 1. Vacuously true negative literals (atom not possible) are dropped:
    //    compute the surviving negative body per rule.
    let kept_neg: Vec<Vec<&GroundAtom>> =
        proto.iter().map(|rule| rule.neg.iter().filter(|a| possible(a)).collect()).collect();

    // 2. Certain fixpoint with counting.
    let mut certain_ids: FastMap<GroundAtom, usize> = FastMap::default();
    let mut certain_list: Vec<GroundAtom> = Vec::new();
    let mark_certain = |a: &GroundAtom,
                        list: &mut Vec<GroundAtom>,
                        ids: &mut FastMap<GroundAtom, usize>|
     -> bool {
        if ids.contains_key(a) {
            return false;
        }
        ids.insert(a.clone(), list.len());
        list.push(a.clone());
        true
    };

    // watchers[atom] = indices of eligible rules waiting on it.
    let mut watchers: FastMap<GroundAtom, Vec<usize>> = FastMap::default();
    let mut remaining: Vec<usize> = vec![usize::MAX; proto.len()];
    let mut queue: Vec<GroundAtom> = Vec::new();
    for (ri, rule) in proto.iter().enumerate() {
        if rule.heads.len() != 1 || !kept_neg[ri].is_empty() {
            continue;
        }
        remaining[ri] = rule.pos.len();
        if rule.pos.is_empty() {
            if mark_certain(&rule.heads[0], &mut certain_list, &mut certain_ids) {
                queue.push(rule.heads[0].clone());
            }
        } else {
            for p in &rule.pos {
                watchers.entry(p.clone()).or_default().push(ri);
            }
        }
    }
    while let Some(atom) = queue.pop() {
        let Some(rules) = watchers.get(&atom) else { continue };
        // Count each occurrence: a rule may repeat an atom in its body.
        for &ri in rules.clone().iter() {
            let dups = proto[ri].pos.iter().filter(|p| **p == atom).count();
            remaining[ri] = remaining[ri].saturating_sub(dups);
            if remaining[ri] == 0 {
                remaining[ri] = usize::MAX; // fire once
                let head = proto[ri].heads[0].clone();
                if mark_certain(&head, &mut certain_list, &mut certain_ids) {
                    queue.push(head);
                }
            }
        }
    }
    let certain = |a: &GroundAtom| certain_ids.contains_key(a);

    // 3. Build the final program.
    let mut out = GroundProgram::default();
    let mut emitted: FastSet<GroundRule> = FastSet::default();
    for fact in &certain_list {
        let id: AtomId = out.atoms.intern(fact.clone());
        let rule = GroundRule::fact(id);
        if emitted.insert(rule.clone()) {
            out.rules.push(rule);
        }
    }
    for (ri, rule) in proto.iter().enumerate() {
        if kept_neg[ri].iter().any(|a| certain(a)) {
            continue; // can never fire
        }
        if !rule.heads.is_empty() && rule.heads.iter().any(certain) {
            continue; // already satisfied (single head: emitted as a fact)
        }
        let head: Vec<AtomId> = rule.heads.iter().map(|a| out.atoms.intern(a.clone())).collect();
        let pos: Vec<AtomId> =
            rule.pos.iter().filter(|a| !certain(a)).map(|a| out.atoms.intern(a.clone())).collect();
        let neg: Vec<AtomId> =
            kept_neg[ri].iter().map(|a| out.atoms.intern((*a).clone())).collect();
        let ground = GroundRule { head, pos, neg };
        if emitted.insert(ground.clone()) {
            out.rules.push(ground);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp_core::{GroundTerm, Symbols};

    fn atom(syms: &Symbols, name: &str, arg: i64) -> GroundAtom {
        GroundAtom::new(syms.intern(name), vec![GroundTerm::Int(arg)])
    }

    fn relations_for(atoms: &[GroundAtom]) -> FastMap<Predicate, Relation> {
        let mut rels: FastMap<Predicate, Relation> = FastMap::default();
        for a in atoms {
            rels.entry(a.predicate()).or_default().insert(a.args.clone());
        }
        rels
    }

    #[test]
    fn impossible_negatives_are_dropped() {
        let syms = Symbols::new();
        let f = atom(&syms, "f", 1);
        let h = atom(&syms, "h", 1);
        let ghost = atom(&syms, "ghost", 1);
        let rels = relations_for(&[f.clone(), h.clone()]);
        let proto = vec![
            ProtoRule { heads: vec![f.clone()], pos: vec![], neg: vec![] },
            ProtoRule { heads: vec![h.clone()], pos: vec![f.clone()], neg: vec![ghost] },
        ];
        let gp = finalize(&rels, proto);
        // Both f and h become certain facts; no residual rules.
        assert_eq!(gp.rules.len(), 2);
        assert!(gp.rules.iter().all(|r| r.is_fact()));
    }

    #[test]
    fn certain_negative_kills_rule() {
        let syms = Symbols::new();
        let f = atom(&syms, "f", 1);
        let h = atom(&syms, "h", 1);
        let rels = relations_for(&[f.clone(), h.clone()]);
        let proto = vec![
            ProtoRule { heads: vec![f.clone()], pos: vec![], neg: vec![] },
            ProtoRule { heads: vec![h.clone()], pos: vec![], neg: vec![f.clone()] },
        ];
        let gp = finalize(&rels, proto);
        assert_eq!(gp.rules.len(), 1, "h :- not f must be deleted");
        assert!(gp.rules[0].is_fact());
        assert_eq!(gp.atoms.resolve(gp.rules[0].head[0]), &f);
    }

    #[test]
    fn non_certain_chains_stay_as_rules() {
        let syms = Symbols::new();
        let a = atom(&syms, "a", 1);
        let b = atom(&syms, "b", 1);
        let rels = relations_for(&[a.clone(), b.clone()]);
        // a :- not b.  b :- not a.  Classic even loop: nothing certain.
        let proto = vec![
            ProtoRule { heads: vec![a.clone()], pos: vec![], neg: vec![b.clone()] },
            ProtoRule { heads: vec![b.clone()], pos: vec![], neg: vec![a.clone()] },
        ];
        let gp = finalize(&rels, proto);
        assert_eq!(gp.rules.len(), 2);
        assert!(gp.rules.iter().all(|r| !r.is_fact()));
    }

    #[test]
    fn certain_positive_literals_are_removed() {
        let syms = Symbols::new();
        let f = atom(&syms, "f", 1);
        let g = atom(&syms, "g", 1);
        let h = atom(&syms, "h", 1);
        let rels = relations_for(&[f.clone(), g.clone(), h.clone()]);
        // f. g :- not h_ghost (possible h blocks certainty of g).
        // h :- f, g.   f certain => literal dropped; g not certain => kept.
        let proto = vec![
            ProtoRule { heads: vec![f.clone()], pos: vec![], neg: vec![] },
            ProtoRule { heads: vec![g.clone()], pos: vec![], neg: vec![h.clone()] },
            ProtoRule { heads: vec![h.clone()], pos: vec![f.clone(), g.clone()], neg: vec![] },
        ];
        let gp = finalize(&rels, proto);
        let rule = gp
            .rules
            .iter()
            .find(|r| !r.is_fact() && !r.head.is_empty() && gp.atoms.resolve(r.head[0]) == &h)
            .expect("h rule kept");
        assert_eq!(rule.pos.len(), 1, "certain f dropped, g kept");
    }

    #[test]
    fn empty_constraint_survives_as_unsat_marker() {
        let syms = Symbols::new();
        let f = atom(&syms, "f", 1);
        let rels = relations_for(std::slice::from_ref(&f));
        let proto = vec![
            ProtoRule { heads: vec![f.clone()], pos: vec![], neg: vec![] },
            ProtoRule { heads: vec![], pos: vec![f.clone()], neg: vec![] },
        ];
        let gp = finalize(&rels, proto);
        let constraint = gp.rules.iter().find(|r| r.is_constraint()).expect("constraint kept");
        assert!(constraint.pos.is_empty(), "certain positive literal removed -> empty constraint");
    }
}
