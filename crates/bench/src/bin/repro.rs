//! Regenerates the paper's evaluation: Figures 7–10, the §IV headline
//! claims, and the ablations beyond the paper.
//!
//! ```text
//! cargo run --release -p sr-bench --bin repro -- all        # everything
//! cargo run --release -p sr-bench --bin repro -- fig7       # one figure
//! cargo run --release -p sr-bench --bin repro -- all --quick
//! cargo run --release -p sr-bench --bin repro -- claims
//! cargo run --release -p sr-bench --bin repro -- ablations
//! ```
//!
//! CSVs are written to `results/`.

use sr_bench::{
    analysis_json, chaos_json, csv, delta_grounding_json, incremental_json, join_planning_json,
    multi_tenant_json, observability_json, program_p_prime, run, run_analysis, run_chaos,
    run_delta_grounding, run_incremental, run_join_planning, run_multi_tenant, run_observability,
    run_throughput, table, throughput_json, AnalysisBenchConfig, ChaosConfig, DeltaGroundingConfig,
    ExperimentConfig, ExperimentResult, IncrementalConfig, JoinPlanningConfig, Measure,
    MultiTenantConfig, ObservabilityConfig, Series, ThroughputConfig, PROGRAM_P,
};
use sr_core::{AnalysisConfig, DependencyAnalysis, DuplicationPolicy, ParallelMode};
use sr_stream::GeneratorKind;
use std::path::Path;

const USAGE: &str = "\
repro — regenerate the paper's evaluation (Figures 7-10, claims, ablations)

usage: repro [all|fig7|fig8|fig9|fig10|claims|ablations|throughput|incremental|delta-grounding|join-planning|multi-tenant|observability|chaos|analyze] [--quick]
       repro check [--forbid-skips] <BENCH_*.json>...
       repro --smoke
       repro --help

  all          every figure, the Section IV claims, the ablations and the
               throughput + incremental + delta-ground + join-planning +
               multi-tenant + analysis sweeps (default)
  figN         one figure's grid and CSV (written to results/)
  claims       the Section IV headline claims on the measured grids
  ablations    partitioning ablations beyond the paper
  throughput   pipelined StreamEngine vs window-at-a-time baseline
               (writes results/BENCH_throughput.json)
  incremental  sliding-window slide/size sweep: partition-cache reasoner vs
               full recompute (writes results/BENCH_incremental.json)
  delta-grounding
               sliding-window sweep: delta-driven grounding inside dirty
               partitions vs the partition-cache-only incremental reasoner
               (writes results/BENCH_delta_grounding.json)
  join-planning
               wide-body join sweep: cost-based join planning in the hot
               grounding loop vs the syntactic bound-args heuristic
               (writes results/BENCH_join_planning.json)
  multi-tenant tenant count x duplicate-ratio sweep: one shared
               MultiTenantEngine vs N independent pipelines
               (writes results/BENCH_multi_tenant.json)
  observability
               engine throughput with sr-obs tracing + a scraped metrics
               registry fully on vs fully off: byte-identity both sides and
               the instrumentation overhead fraction
               (writes results/BENCH_observability.json)
  chaos        engine under deterministic fault injection (worker panics,
               corrupted deltas, cache invalidations, slowdowns past the
               window deadline): inert-hook identity, clean-window identity,
               degraded_window_fraction and recovery_windows_p95
               (writes results/BENCH_chaos.json)
  analyze      static-bound tightness: the admission-time memory bound vs
               the delta grounder's observed peak state on the churn
               workload; bound_tightness must stay <= 1.0 — a violation is
               a soundness bug (writes results/BENCH_analysis.json)
  check        regression-gate one or more BENCH_*.json records: exit 1 when
               any output-identity flag is false, the record's headline
               speedup (speedup_at_eighth / best_speedup_windows_per_sec /
               shared_work_speedup_at_dup1 / planner_speedup) fell below
               1.0, the observability record's obs_overhead_fraction
               exceeded 0.05, the chaos record's degraded_window_fraction
               exceeded its recorded ceiling, or the analysis record's
               bound_tightness exceeded 1.0 — the CI bench-gate step.
               On a 1-core runner, parallelism-dependent gates (the
               throughput record) are marked skipped_single_core instead of
               failing spuriously; --forbid-skips turns any skip into a
               failure (CI asserts this on its multi-core runners)
  --quick      small grid (2 window sizes, 2 reps) instead of the paper grid
  --smoke      seconds-fast end-to-end pipeline check, no files written
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    if args.first().map(String::as_str) == Some("check") {
        check(&args[1..]);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let what = args.iter().find(|a| !a.starts_with("--")).map(String::as_str).unwrap_or("all");

    std::fs::create_dir_all("results").expect("create results dir");

    let mut p_result: Option<ExperimentResult> = None;
    let mut pp_result: Option<ExperimentResult> = None;

    if matches!(what, "all" | "fig7" | "fig8" | "claims") {
        p_result = Some(experiment(PROGRAM_P, "P", quick));
    }
    if matches!(what, "all" | "fig9" | "fig10" | "claims") {
        pp_result = Some(experiment(&program_p_prime(), "P'", quick));
    }

    if matches!(what, "all" | "fig7") {
        figure(
            p_result.as_ref().unwrap(),
            "fig7",
            "Figure 7: reasoning latency (program P), ms",
            Measure::LatencyMs,
        );
    }
    if matches!(what, "all" | "fig8") {
        figure(
            p_result.as_ref().unwrap(),
            "fig8",
            "Figure 8: accuracy (program P)",
            Measure::Accuracy,
        );
    }
    if matches!(what, "all" | "fig9") {
        figure(
            pp_result.as_ref().unwrap(),
            "fig9",
            "Figure 9: reasoning latency (program P'), ms",
            Measure::LatencyMs,
        );
    }
    if matches!(what, "all" | "fig10") {
        figure(
            pp_result.as_ref().unwrap(),
            "fig10",
            "Figure 10: accuracy (program P')",
            Measure::Accuracy,
        );
    }
    if matches!(what, "all" | "claims") {
        claims(p_result.as_ref().unwrap(), pp_result.as_ref().unwrap());
    }
    if matches!(what, "all" | "ablations") {
        ablations(quick);
    }
    if matches!(what, "all" | "throughput") {
        throughput(quick);
    }
    if matches!(what, "all" | "incremental") {
        incremental(quick);
    }
    if matches!(what, "all" | "delta-grounding") {
        delta_grounding(quick);
    }
    if matches!(what, "all" | "join-planning") {
        join_planning(quick);
    }
    if matches!(what, "all" | "multi-tenant") {
        multi_tenant(quick);
    }
    if matches!(what, "all" | "observability") {
        observability(quick);
    }
    if matches!(what, "all" | "chaos") {
        chaos(quick);
    }
    if matches!(what, "all" | "analyze") {
        analyze(quick);
    }
}

/// The static-bound tightness run: the admission-time memory bound versus
/// the delta grounder's observed peak state on the retraction-heavy churn
/// workload, recorded as `results/BENCH_analysis.json`.
fn analyze(quick: bool) {
    println!("\n== Static analysis: admission-time memory bound vs observed peak state ==");
    let cfg = if quick { AnalysisBenchConfig::quick() } else { AnalysisBenchConfig::paper() };
    let result = run_analysis(&cfg).expect("analysis run");
    println!(
        "  window {} items, {} windows per ratio, {} partitions, retract fraction {:.2}",
        result.window_size, result.windows, result.partitions, result.retract_fraction
    );
    for run in &result.runs {
        println!(
            "  slide 1/{:<2} ({} items): predicted {} cells, observed peak {} -> tightness \
             {:.4}, within bound: {}, identical: {}",
            (result.window_size / run.slide),
            run.slide,
            run.predicted_cells,
            run.observed_cells,
            run.tightness,
            run.within_bound,
            run.output_identical
        );
    }
    println!(
        "  bound_tightness (headline, must stay <= 1.0): {:.4}, all within bound: {}",
        result.bound_tightness(),
        result.all_within_bound()
    );
    let path = "results/BENCH_analysis.json";
    std::fs::write(Path::new(path), analysis_json(&result)).expect("write analysis json");
    println!("[json written to {path}]");
}

/// The chaos run: the engine throughput workload under deterministic fault
/// injection with the per-window deadline armed, recorded as
/// `results/BENCH_chaos.json`.
fn chaos(quick: bool) {
    println!("\n== Chaos: engine under deterministic fault injection ==");
    let cfg = if quick { ChaosConfig::quick(PROGRAM_P) } else { ChaosConfig::paper(PROGRAM_P) };
    let result = run_chaos(&cfg).expect("chaos run");
    println!(
        "  {} windows x {} items, {} in flight, faults {:.0}% + slowdowns {:.0}% ({} ms stall), \
         deadline {} ms",
        result.windows,
        result.window_size,
        result.in_flight,
        result.fault_rate * 100.0,
        result.slowdown_rate * 100.0,
        result.stall_ms,
        result.deadline_ms
    );
    println!(
        "  hooks disabled identical: {}, clean windows identical: {}, emission ordered: {}",
        result.hooks_disabled_identical, result.clean_windows_identical, result.emission_ordered
    );
    println!(
        "  degraded {} / errored {} of {} windows (fraction {:.4}, ceiling {:.2}), \
         recovery p95 {:.1} window(s)",
        result.degraded_windows,
        result.errored_windows,
        result.windows,
        result.degraded_window_fraction,
        result.degraded_fraction_ceiling,
        result.recovery_windows_p95
    );
    if let Some(f) = &result.faulted.failure {
        println!(
            "  recovery counters: {} retries, {} fallbacks, {} degraded, {} late, \
             {} lane rebuilds",
            f.retries, f.fallbacks, f.degraded_windows, f.late_recoveries, f.lane_rebuilds
        );
    }
    let path = "results/BENCH_chaos.json";
    std::fs::write(Path::new(path), chaos_json(&result)).expect("write chaos json");
    println!("[json written to {path}]");
}

/// The observability overhead run: the engine throughput workload with
/// sr-obs fully on (tracer live, registry scraped) vs fully off, recorded
/// as `results/BENCH_observability.json`.
fn observability(quick: bool) {
    println!("\n== Observability: tracing + scraped metrics registry on vs off ==");
    let cfg = if quick {
        ObservabilityConfig::quick(PROGRAM_P)
    } else {
        ObservabilityConfig::paper(PROGRAM_P)
    };
    let result = run_observability(&cfg).expect("observability run");
    println!(
        "  {} windows x {} items, {} in flight, best of {} trial(s) per side",
        result.windows, result.window_size, result.in_flight, result.trials
    );
    println!(
        "  off: {:.2} windows/s (p50 {:.2} ms) — identical: {}",
        result.off.windows_per_sec, result.off.latency.p50_ms, result.off_output_identical
    );
    println!(
        "  on:  {:.2} windows/s (p50 {:.2} ms) — identical: {}, {} spans / {} stages, {} scrape bytes",
        result.on.windows_per_sec,
        result.on.latency.p50_ms,
        result.on_output_identical,
        result.spans_recorded,
        result.stages_covered,
        result.scrape_bytes
    );
    println!("  overhead fraction: {:.4}", result.overhead_fraction());
    let path = "results/BENCH_observability.json";
    std::fs::write(Path::new(path), observability_json(&result)).expect("write observability json");
    println!("[json written to {path}]");
}

/// The join-planning sweep (beyond the paper): cost-based join ordering in
/// the hot grounding loop vs the syntactic bound-args heuristic on wide-body
/// rules over a skewed workload, recorded as `results/BENCH_join_planning.json`.
fn join_planning(quick: bool) {
    println!("\n== Join planning: cost-based join ordering vs syntactic heuristic ==");
    let cfg = if quick { JoinPlanningConfig::quick() } else { JoinPlanningConfig::paper() };
    let result = run_join_planning(&cfg).expect("join-planning sweep");
    println!("  {} windows per cell", result.windows);
    for run in &result.runs {
        println!(
            "  window {:>5}: syntactic {:.1} ms, planner {:.1} ms -> {:.2}x, identical: {}",
            run.window_size, run.syntactic_ms, run.planner_ms, run.speedup, run.output_identical
        );
    }
    let churn = &result.churn;
    println!(
        "  churn (size {}, slide {}): syntactic {:.1} ms, planner {:.1} ms -> {:.2}x, \
         {} replans / {} plans reordered, identical: {}",
        churn.window_size,
        churn.slide,
        churn.syntactic_ms,
        churn.planner_ms,
        churn.speedup,
        churn.cache.planner_replans,
        churn.cache.planner_plans_reordered,
        churn.output_identical
    );
    let path = "results/BENCH_join_planning.json";
    std::fs::write(Path::new(path), join_planning_json(&result)).expect("write join-planning json");
    println!("[json written to {path}]");
}

/// The multi-tenant serving sweep (beyond the paper): one shared
/// `MultiTenantEngine` vs N independent pipelines over tenant count ×
/// duplicate ratio, recorded as `results/BENCH_multi_tenant.json`.
fn multi_tenant(quick: bool) {
    println!("\n== Multi-tenant: shared program serving vs independent pipelines ==");
    let cfg = if quick { MultiTenantConfig::quick() } else { MultiTenantConfig::paper() };
    let result = run_multi_tenant(&cfg).expect("multi-tenant sweep");
    println!(
        "  window {} items (slide {}), {} windows per cell, {} programs, cache capacity {}",
        result.window_size, result.slide, result.windows, result.programs, result.cache_capacity
    );
    for run in &result.runs {
        println!(
            "  tenants {:>2} dup {:.2}: independent {:.1} ms, shared {:.1} ms -> {:.2}x, \
             dedup ratio {:.2} ({} runs saved), identical: {}",
            run.tenants,
            run.dup_ratio,
            run.independent_ms,
            run.shared_ms,
            run.speedup,
            run.dedup.dedup_ratio,
            run.dedup.shared_runs_saved,
            run.output_identical
        );
    }
    if let Some(stats) = &result.stats {
        println!(
            "  headline cell: {:.2} windows/s, window latency p50 {:.2} ms / p99 {:.2} ms, \
             {} tenant latency series",
            stats.windows_per_sec,
            stats.latency.p50_ms,
            stats.latency.p99_ms,
            stats.tenants.len()
        );
    }
    let path = "results/BENCH_multi_tenant.json";
    std::fs::write(Path::new(path), multi_tenant_json(&result)).expect("write multi-tenant json");
    println!("[json written to {path}]");
}

/// The CI bench gate: checks every given record with
/// [`sr_bench::check_record`] — all records are checked and all violations
/// reported before the non-zero exit — so the bench-smoke job fails on an
/// output-identity or headline-speedup regression instead of silently
/// uploading a bad record.
fn check(args: &[String]) {
    let forbid_skips = args.iter().any(|a| a == "--forbid-skips");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if files.is_empty() {
        eprintln!("repro check: no record files given\n\n{USAGE}");
        std::process::exit(2);
    }
    let single_core = std::thread::available_parallelism().map(|n| n.get() == 1).unwrap_or(false);
    let mut failed = false;
    let mut skipped = 0usize;
    for file in files {
        let json = match std::fs::read_to_string(file) {
            Ok(json) => json,
            Err(e) => {
                eprintln!("FAIL {file}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        // A 1-core runner cannot deliver pipelining gains, so the
        // parallelism-dependent speedup gates would fail (or pass)
        // vacuously there — mark them skipped instead of pretending the
        // measurement meant something.
        if single_core && sr_bench::parallelism_dependent(&json) {
            println!(
                "SKIP {file}: skipped_single_core (parallelism-dependent gate on a 1-core runner)"
            );
            skipped += 1;
            continue;
        }
        match sr_bench::check_record(&json) {
            Ok(summary) => println!(
                "PASS {file}: {} = {:.4}, {} identity flag(s) true",
                summary.speedup_key, summary.speedup, summary.identity_flags
            ),
            Err(violations) => {
                failed = true;
                for v in &violations {
                    eprintln!("FAIL {file}: {v}");
                }
            }
        }
    }
    if skipped > 0 && forbid_skips {
        eprintln!(
            "FAIL: {skipped} gate(s) skipped_single_core but --forbid-skips was given — \
             this runner should be multi-core"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

/// The delta-grounding sweep (beyond the paper): maintained grounding +
/// partition-scoped deltas inside dirty partitions vs the partition-cache-
/// only incremental reasoner, recorded as `results/BENCH_delta_grounding.json`.
fn delta_grounding(quick: bool) {
    println!(
        "\n== Delta grounding: maintained dirty-partition grounding vs cache-only incremental =="
    );
    let cfg = if quick { DeltaGroundingConfig::quick() } else { DeltaGroundingConfig::paper() };
    let result = run_delta_grounding(&cfg).expect("delta-ground sweep");
    println!(
        "  window {} items, {} windows per ratio, {} partitions, cache capacity {}",
        result.window_size, result.windows, result.partitions, result.cache_capacity
    );
    for run in &result.runs {
        println!(
            "  slide 1/{:<2} ({} items): cache-only {:.1} ms, delta-ground {:.1} ms -> {:.2}x \
             (full {:.1} ms), {} applies / {} regrounds, identical: {}",
            (result.window_size / run.slide),
            run.slide,
            run.cache_only_ms,
            run.delta_ms,
            run.speedup,
            run.full_ms,
            run.cache.delta_applies,
            run.cache.delta_regrounds,
            run.output_identical
        );
    }
    println!(
        "  engine pass: {} lanes, queue high-water {}, output identical: {}",
        result.engine.lanes.len(),
        result.engine.queue_high_water,
        result.engine_output_identical
    );
    let path = "results/BENCH_delta_grounding.json";
    std::fs::write(Path::new(path), delta_grounding_json(&result))
        .expect("write delta-ground json");
    println!("[json written to {path}]");
}

/// The sliding-window incremental sweep (beyond the paper): fingerprint-
/// cached partition reuse vs full recomputation, recorded as
/// `results/BENCH_incremental.json`.
fn incremental(quick: bool) {
    println!("\n== Incremental: partition-cache reasoner vs full recompute (sliding windows) ==");
    let cfg = if quick { IncrementalConfig::quick() } else { IncrementalConfig::paper() };
    let result = run_incremental(&cfg).expect("incremental sweep");
    println!(
        "  window {} items, {} windows per ratio, {} partitions, cache capacity {}",
        result.window_size, result.windows, result.partitions, result.cache_capacity
    );
    for run in &result.runs {
        println!(
            "  slide 1/{:<2} ({} items): full {:.1} ms, incremental {:.1} ms -> {:.2}x, \
             dirty ratio {:.2}, identical: {}",
            (result.window_size / run.slide),
            run.slide,
            run.baseline_ms,
            run.incremental_ms,
            run.speedup,
            run.cache.dirty_partition_ratio,
            run.output_identical
        );
    }
    let path = "results/BENCH_incremental.json";
    std::fs::write(Path::new(path), incremental_json(&result)).expect("write incremental json");
    println!("[json written to {path}]");
}

/// The multi-window throughput sweep (beyond the paper): sequential baseline
/// vs the pipelined engine, recorded as `results/BENCH_throughput.json`.
fn throughput(quick: bool) {
    println!("\n== Throughput: pipelined StreamEngine vs window-at-a-time baseline ==");
    let cfg =
        if quick { ThroughputConfig::quick(PROGRAM_P) } else { ThroughputConfig::paper(PROGRAM_P) };
    let result = run_throughput(&cfg).expect("throughput sweep");
    println!(
        "  baseline: {:.2} windows/s ({:.0} items/s, p50 {:.2} ms)",
        result.baseline.windows_per_sec,
        result.baseline.items_per_sec,
        result.baseline.latency.p50_ms
    );
    for run in &result.runs {
        println!(
            "  in-flight {}: {:.2} windows/s ({:.0} items/s, p50 {:.2} ms, p99 {:.2} ms) — ordered output identical: {}",
            run.in_flight,
            run.stats.windows_per_sec,
            run.stats.items_per_sec,
            run.stats.latency.p50_ms,
            run.stats.latency.p99_ms,
            run.output_identical
        );
    }
    println!("  best speedup: {:.2}x", result.best_speedup());
    let path = "results/BENCH_throughput.json";
    std::fs::write(Path::new(path), throughput_json(&result)).expect("write throughput json");
    println!("[json written to {path}]");
}

/// CI fast path: drives the full measurement pipeline (parse → analyze →
/// partition → parallel reasoning → combine → report) on a tiny grid so the
/// harness itself can never silently rot, without paper-scale runtimes.
fn smoke() {
    let cfg = ExperimentConfig {
        window_sizes: vec![200, 500],
        reps: 1,
        warmup: 0,
        random_ks: vec![2],
        ..ExperimentConfig::quick(PROGRAM_P, GeneratorKind::CorrelatedSparse)
    };
    let result = run(&cfg).expect("smoke experiment");
    print!("{}", table(&result, Measure::LatencyMs, true));
    print!("{}", table(&result, Measure::Accuracy, true));
    println!(
        "smoke ok: {} window sizes x {} series measured",
        result.window_sizes.len(),
        result.series.len()
    );
}

fn experiment(program: &str, name: &str, quick: bool) -> ExperimentResult {
    eprintln!(
        ">>> running experiment grid for program {name} ({})",
        if quick { "quick" } else { "paper" }
    );
    let cfg = if quick {
        ExperimentConfig::quick(program, GeneratorKind::CorrelatedSparse)
    } else {
        ExperimentConfig::paper(program, GeneratorKind::CorrelatedSparse)
    };
    run(&cfg).expect("experiment run")
}

fn figure(result: &ExperimentResult, id: &str, title: &str, measure: Measure) {
    println!("\n== {title} ==");
    print!("{}", table(result, measure, true));
    if !result.duplicated_predicates.is_empty() {
        println!(
            "duplicated predicates: {:?} ({:.1}% of window instances duplicated)",
            result.duplicated_predicates,
            result.duplication_ratio * 100.0
        );
    }
    let path = format!("results/{id}.csv");
    std::fs::write(Path::new(&path), csv(result)).expect("write csv");
    println!("[csv written to {path}]");
}

/// The §IV headline claims, checked on the measured grids.
fn claims(p: &ExperimentResult, pp: &ExperimentResult) {
    println!("\n== Paper claims (Section IV) vs measured ==");
    let last = *p.window_sizes.last().unwrap();

    let r = p.cell(last, &Series::R).median_latency();
    let dep = p.cell(last, &Series::PrDep).median_latency();
    println!(
        "claim: PR_Dep cuts ~50% of R's latency (P, {last} items): R {r:.2} ms, PR_Dep {dep:.2} ms -> {:.0}% of R",
        dep / r * 100.0
    );

    let acc_dep = p.cell(last, &Series::PrDep).mean_accuracy();
    println!("claim: PR_Dep accuracy is maintained (P): measured {acc_dep:.3} (expected 1.000)");

    let acc_k2 = p.cell(last, &Series::PrRan(2)).mean_accuracy();
    let acc_k5 = p.cell(last, &Series::PrRan(5)).mean_accuracy();
    println!(
        "claim: random partitioning decreases accuracy sharply (P): k2 {acc_k2:.3}, k5 {acc_k5:.3}"
    );

    let lat_k2 = p.cell(last, &Series::PrRan(2)).median_latency();
    println!(
        "claim: PR_Dep and PR_Ran_k2 latencies are close (P): PR_Dep {dep:.2} ms vs k2 {lat_k2:.2} ms"
    );

    let dep_pp = pp.cell(last, &Series::PrDep).median_latency();
    println!(
        "claim: duplication increases PR_Dep latency up to 30% (P' vs P): {dep:.2} -> {dep_pp:.2} ms (+{:.0}%)",
        (dep_pp / dep - 1.0) * 100.0
    );
    println!(
        "claim: ~25% of instances duplicated (P'): measured {:.1}% (uniform predicate mix puts car_number at ~1/6)",
        pp.duplication_ratio * 100.0
    );
    let acc_dep_pp = pp.cell(last, &Series::PrDep).mean_accuracy();
    println!("claim: accuracy for P' same as for P (PR_Dep): measured {acc_dep_pp:.3}");
}

/// Ablations beyond the paper (DESIGN.md §6).
fn ablations(quick: bool) {
    use asp_core::Symbols;
    use asp_parser::parse_program;

    println!("\n== Ablation: Louvain resolution sweep (program P') ==");
    let syms = Symbols::new();
    let program = parse_program(&syms, &program_p_prime()).unwrap();
    for resolution in [0.5, 1.0, 2.0, 4.0] {
        let cfg = AnalysisConfig { resolution, ..Default::default() };
        let a = DependencyAnalysis::analyze(&syms, &program, None, &cfg).unwrap();
        println!(
            "  resolution {resolution:>4}: {} communities, duplicated {:?}, verify: {}",
            a.plan.communities,
            a.plan.duplicated(),
            if a.verify_plan(&syms).is_empty() { "PASS" } else { "VIOLATIONS" }
        );
    }

    println!("\n== Ablation: duplication policy (program P') ==");
    for (name, policy) in [
        ("SmallerSet (paper)", DuplicationPolicy::SmallerSet),
        (
            "FewerInstances (car_number expensive)",
            DuplicationPolicy::FewerInstances(vec![
                ("car_number".into(), 10.0),
                ("car_in_smoke".into(), 0.5),
                ("car_speed".into(), 0.5),
                ("car_location".into(), 0.5),
            ]),
        ),
    ] {
        let cfg = AnalysisConfig { duplication: policy, ..Default::default() };
        let a = DependencyAnalysis::analyze(&syms, &program, None, &cfg).unwrap();
        println!("  {name}: duplicated {:?}", a.plan.duplicated());
    }

    println!("\n== Ablation: threads vs sequential PR_Dep (program P) ==");
    let sizes = if quick { vec![5_000] } else { vec![10_000, 40_000] };
    for mode in [ParallelMode::Threads, ParallelMode::Sequential] {
        let cfg = ExperimentConfig {
            window_sizes: sizes.clone(),
            reps: if quick { 1 } else { 3 },
            random_ks: vec![],
            mode,
            ..ExperimentConfig::paper(PROGRAM_P, GeneratorKind::Correlated)
        };
        let result = run(&cfg).expect("ablation run");
        for &s in &sizes {
            println!(
                "  {mode:?} window {s}: PR_Dep {:.2} ms (R {:.2} ms)",
                result.cell(s, &Series::PrDep).median_latency(),
                result.cell(s, &Series::R).median_latency()
            );
        }
    }

    println!("\n== Ablation: larger rule set (17 rules, 13 inputs, 4 communities) ==");
    {
        use asp_solver::SolverConfig;
        use sr_core::{
            ParallelReasoner, PlanPartitioner, ReasonerConfig, SingleReasoner, UnknownPredicate,
        };
        use sr_stream::{FaithfulGenerator, Window, WorkloadGenerator};
        use std::sync::Arc;

        let program = parse_program(&syms, sr_bench::programs::LARGE_TRAFFIC).unwrap();
        let a =
            DependencyAnalysis::analyze(&syms, &program, None, &AnalysisConfig::default()).unwrap();
        println!(
            "  communities: {}, duplicated: {:?}, verify: {}",
            a.plan.communities,
            a.plan.duplicated(),
            if a.verify_plan(&syms).is_empty() { "PASS" } else { "VIOLATIONS" }
        );
        let names: Vec<String> = a.inpre.iter().map(|p| syms.resolve(p.name).to_string()).collect();
        let mut generator = FaithfulGenerator::new(names, 4242);
        let size = if quick { 5_000 } else { 20_000 };
        let mut r = SingleReasoner::new(&syms, &program, None, SolverConfig::default()).unwrap();
        let mut pr = ParallelReasoner::new(
            &syms,
            &program,
            Some(&a.inpre),
            Arc::new(PlanPartitioner::new(a.plan.clone(), UnknownPredicate::Partition0)),
            ReasonerConfig::default(),
        )
        .unwrap();
        let mut r_ms = Vec::new();
        let mut pr_ms = Vec::new();
        for rep in 0..4u64 {
            let window = Window::new(rep, generator.window(size));
            let out_r = r.process(&window).unwrap();
            let out_pr = pr.process(&window).unwrap();
            if rep > 0 {
                r_ms.push(out_r.timing.total.as_secs_f64() * 1e3);
                pr_ms.push(out_pr.timing.total.as_secs_f64() * 1e3);
            }
        }
        let med = |mut v: Vec<f64>| {
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        println!(
            "  window {size}: R {:.2} ms, PR_Dep(4 communities) {:.2} ms",
            med(r_ms),
            med(pr_ms)
        );
    }

    println!("\n== Ablation: generator mode (program P, accuracy of PR_Ran_k2) ==");
    for kind in
        [GeneratorKind::Faithful, GeneratorKind::Correlated, GeneratorKind::CorrelatedSparse]
    {
        let cfg = ExperimentConfig {
            window_sizes: if quick { vec![5_000] } else { vec![20_000] },
            reps: if quick { 1 } else { 3 },
            random_ks: vec![2],
            ..ExperimentConfig::paper(PROGRAM_P, kind)
        };
        let result = run(&cfg).expect("ablation run");
        let s = result.window_sizes[0];
        println!(
            "  {kind:?}: PR_Ran_k2 accuracy {:.3}, PR_Dep accuracy {:.3}",
            result.cell(s, &Series::PrRan(2)).mean_accuracy(),
            result.cell(s, &Series::PrDep).mean_accuracy()
        );
    }
}
