//! Stage-trace diagnostics: per-stage breakdown for R and PR_Dep across
//! window sizes, reconstructed from sr-obs span traces (the same
//! instrumentation `streamrule run --trace-out` exports) rather than the
//! reasoners' ad-hoc timing structs. Not part of the figure reproduction;
//! used to validate the latency model.
//!
//! ```text
//! cargo run --release -p sr-bench --bin diag              # default sizes
//! cargo run --release -p sr-bench --bin diag -- 500       # one size
//! cargo run --release -p sr-bench --bin diag -- 500 --json
//! cargo run --release -p sr-bench --bin diag -- 500 --fault-spec worker_panic:0.3:7
//! ```
//!
//! `--fault-spec SITE:RATE:SEED[,...]` additionally drives the incremental
//! reasoner over the same windows with the fault plan installed and reports
//! its recovery counters (retries, fallbacks) on stderr — a quick look at
//! how much recovery work a given fault rate induces. The counters are
//! printed only when injection is on or a counter actually fired, never
//! fabricated as zeros.

use sr_bench::{ExperimentBench, ExperimentConfig, PROGRAM_P};
use sr_obs::{group_by_window, Stage, WindowTrace};
use sr_stream::{paper_generator, GeneratorKind, Window};

/// Stages the sequential R pass emits, in lifecycle order.
const R_STAGES: &[Stage] = &[Stage::Windowing, Stage::Ground, Stage::Solve];

/// Stages the partitioned PR_Dep pass emits, in lifecycle order.
const PR_STAGES: &[Stage] =
    &[Stage::Partition, Stage::Windowing, Stage::Ground, Stage::Solve, Stage::Combine];

/// One measured reasoner pass: wall time plus the pass's span trace.
struct Pass {
    total_ms: f64,
    traces: Vec<WindowTrace>,
}

impl Pass {
    /// Total milliseconds spent in `stage` across the pass's spans (summed
    /// over workers, so parallel stages can exceed wall time).
    fn stage_ms(&self, stage: Stage) -> f64 {
        self.traces.iter().map(|t| t.stage_total_us(stage)).sum::<u64>() as f64 / 1e3
    }

    /// Spans recorded across the pass.
    fn span_count(&self) -> usize {
        self.traces.iter().map(|t| t.spans.len()).sum()
    }
}

/// Runs `process` once with the tracer drained before and after, so the
/// returned trace holds exactly that pass's spans.
fn traced_pass(mut process: impl FnMut()) -> Pass {
    sr_obs::tracer().drain();
    let t0 = std::time::Instant::now();
    process();
    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    Pass { total_ms, traces: group_by_window(sr_obs::tracer().drain()) }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_mode = args.iter().any(|a| a == "--json");
    let fault_spec: Option<String> =
        args.iter().position(|a| a == "--fault-spec").and_then(|i| args.get(i + 1)).cloned();
    let sizes: Vec<usize> = args.iter().filter_map(|a| a.parse().ok()).collect();
    let sizes = if sizes.is_empty() { vec![5_000, 10_000, 20_000, 40_000] } else { sizes };
    let cfg = ExperimentConfig::paper(PROGRAM_P, GeneratorKind::Correlated);
    let mut bench = ExperimentBench::build(&cfg).expect("build");
    let mut generator = paper_generator(GeneratorKind::Correlated, 1);

    sr_obs::tracer().set_enabled(true);

    if !json_mode {
        print!("{:>8} {:>10}", "window", "R total");
        for stage in R_STAGES {
            print!(" {:>10}", format!("R {}", stage.name()));
        }
        print!(" | {:>10}", "PR total");
        for stage in PR_STAGES {
            print!(" {:>12}", format!("PR {}", stage.name()));
        }
        println!();
    }

    let mut rows = Vec::new();
    let mut windows = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let window = Window::new(i as u64, generator.window(size));
        // Warm up both reasoners on this window (the spans are discarded by
        // the next traced pass's drain), then measure one pass each.
        let _ = bench.r.process(&window).unwrap();
        let _ = bench.pr_dep.process(&window).unwrap();
        let r = traced_pass(|| {
            let _ = bench.r.process(&window).unwrap();
        });
        let pr = traced_pass(|| {
            let _ = bench.pr_dep.process(&window).unwrap();
        });

        if !json_mode {
            print!("{:>8} {:>10.2}", size, r.total_ms);
            for stage in R_STAGES {
                print!(" {:>10.2}", r.stage_ms(*stage));
            }
            print!(" | {:>10.2}", pr.total_ms);
            for stage in PR_STAGES {
                print!(" {:>12.2}", pr.stage_ms(*stage));
            }
            println!();
            println!(
                "          spans: R {} / PR {} (PR stage times sum over pool workers)",
                r.span_count(),
                pr.span_count()
            );
        }
        rows.push((size, r, pr));
        windows.push(window);
    }

    sr_obs::tracer().set_enabled(false);
    sr_obs::tracer().drain();

    if let Some(spec) = fault_spec {
        fault_pass(&spec, &windows);
    }

    if json_mode {
        print!("{}", render_json(&rows));
    }
}

/// Drives the incremental reasoner over `windows` with the given fault plan
/// installed and reports its recovery counters on stderr. Per-window errors
/// (retries exhausted) are loud, not fatal: the remaining windows still run
/// so the counters reflect the whole pass.
fn fault_pass(spec: &str, windows: &[Window]) {
    use sr_core::{
        fault, DependencyAnalysis, IncrementalReasoner, PlanPartitioner, ReasonerConfig,
        UnknownPredicate,
    };
    use std::sync::Arc;

    let plan = match sr_core::FaultPlan::parse_spec(spec) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("bad --fault-spec: {e}");
            std::process::exit(2);
        }
    };
    let syms = asp_core::Symbols::new();
    let program = asp_parser::parse_program(&syms, PROGRAM_P).expect("parse PROGRAM_P");
    let analysis =
        DependencyAnalysis::analyze(&syms, &program, None, &Default::default()).expect("analysis");
    let mut reasoner = IncrementalReasoner::new(
        &syms,
        &program,
        Some(&analysis.inpre),
        Arc::new(PlanPartitioner::new(analysis.plan.clone(), UnknownPredicate::Partition0)),
        ReasonerConfig { incremental: true, ..Default::default() },
    )
    .expect("incremental reasoner");
    fault::install(plan);
    let mut errors = 0usize;
    for window in windows {
        if let Err(e) = reasoner.process(window) {
            errors += 1;
            eprintln!("fault pass: window {} failed loudly: {e}", window.id);
        }
    }
    fault::clear();
    let f = reasoner.failure_counters().snapshot();
    eprintln!(
        "fault pass ({spec}): {} window(s), {} loud error(s), {} retries, {} fallbacks",
        windows.len(),
        errors,
        f.retries,
        f.fallbacks
    );
}

/// Renders the measured rows as a JSON array (hand-rolled; the workspace
/// has no JSON serializer dependency).
fn render_json(rows: &[(usize, Pass, Pass)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("[\n");
    for (i, (size, r, pr)) in rows.iter().enumerate() {
        let _ = writeln!(out, "  {{");
        let _ = writeln!(out, "    \"window_size\": {size},");
        for (name, pass, stages, trailing) in
            [("r", r, R_STAGES, ","), ("pr_dep", pr, PR_STAGES, "")]
        {
            let _ = write!(out, "    \"{name}\": {{\"total_ms\": {:.4}", pass.total_ms);
            for stage in stages {
                let _ = write!(out, ", \"{}_ms\": {:.4}", stage.name(), pass.stage_ms(*stage));
            }
            let _ = writeln!(out, ", \"spans\": {}}}{trailing}", pass.span_count());
        }
        let _ = writeln!(out, "  }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    out.push_str("]\n");
    out
}
