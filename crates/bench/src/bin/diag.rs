//! Timing diagnostics: stage breakdown for R and PR_Dep across window sizes.
//! Not part of the figure reproduction; used to validate the latency model.

use sr_bench::{ExperimentBench, ExperimentConfig, PROGRAM_P};
use sr_stream::{paper_generator, GeneratorKind, Window};

fn main() {
    let sizes: Vec<usize> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
    let sizes = if sizes.is_empty() { vec![5_000, 10_000, 20_000, 40_000] } else { sizes };
    let cfg = ExperimentConfig::paper(PROGRAM_P, GeneratorKind::Correlated);
    let mut bench = ExperimentBench::build(&cfg).expect("build");
    let mut generator = paper_generator(GeneratorKind::Correlated, 1);

    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "window",
        "R total",
        "R xform",
        "R ground",
        "R solve",
        "PR total",
        "PR part",
        "PR xform",
        "PR ground",
        "PR solve",
        "PR comb"
    );
    for (i, &size) in sizes.iter().enumerate() {
        let window = Window::new(i as u64, generator.window(size));
        // Warm up both reasoners on this window, then measure.
        let _ = bench.r.process(&window).unwrap();
        let _ = bench.pr_dep.process(&window).unwrap();
        let r = bench.r.process(&window).unwrap();
        let pr = bench.pr_dep.process(&window).unwrap();
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        println!(
            "{:>8} {:>10.2} {:>10.2} {:>10.2} {:>10.2} | {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            size,
            ms(r.timing.total),
            ms(r.timing.transform),
            ms(r.timing.ground),
            ms(r.timing.solve),
            ms(pr.timing.total),
            ms(pr.timing.partition),
            ms(pr.timing.transform),
            ms(pr.timing.ground),
            ms(pr.timing.solve),
            ms(pr.timing.combine),
        );
        println!(
            "          partitions: {:?}, solver stats R: atoms {} clauses {}",
            pr.partition_sizes, r.solve_stats.atoms, r.solve_stats.clauses
        );
    }
}
