//! The paper's rule sets: program P (Listing 1) and P' (P + r7).

/// Listing 1: the traffic-event detection program P.
pub const PROGRAM_P: &str = r#"
    very_slow_speed(X) :- average_speed(X,Y), Y < 20.
    many_cars(X)       :- car_number(X,Y), Y > 40.
    traffic_jam(X)     :- very_slow_speed(X), many_cars(X), not traffic_light(X).
    car_fire(X)        :- car_in_smoke(C, high), car_speed(C, 0), car_location(C, X).
    give_notification(X) :- traffic_jam(X).
    give_notification(X) :- car_fire(X).
"#;

/// Rule r7 of Section II-B, which connects the two halves of the input
/// dependency graph.
pub const RULE_R7: &str = "traffic_jam(X) :- car_fire(X), many_cars(X).\n";

/// Program P' = P ∪ {r7}.
pub fn program_p_prime() -> String {
    format!("{PROGRAM_P}{RULE_R7}")
}

/// A larger smart-city rule set (the paper's future work asks for "more
/// experiments on different rule sets"): 17 rules over 13 input predicates
/// spanning traffic flow, vehicle emergencies, weather and public transport.
/// Its input dependency graph decomposes into five communities, exercising
/// partitioning degrees beyond the paper's two.
pub const LARGE_TRAFFIC: &str = r#"
    % -- traffic flow (as in Listing 1) --
    very_slow_speed(X) :- average_speed(X,Y), Y < 20.
    many_cars(X)       :- car_number(X,Y), Y > 40.
    traffic_jam(X)     :- very_slow_speed(X), many_cars(X), not traffic_light(X).

    % -- vehicle emergencies --
    car_fire(X)  :- car_in_smoke(C, high), car_speed(C, 0), car_location(C, X).
    breakdown(X) :- hazard_lights(C), car_speed(C, 0), car_location(C, X).

    % -- weather --
    icy_road(X)       :- temperature(X, T), T < 0, precipitation(X, Y), Y > 0.
    low_visibility(X) :- fog_level(X, F), F > 70.
    weather_alert(X)  :- icy_road(X).
    weather_alert(X)  :- low_visibility(X).

    % -- public transport --
    bus_delayed(B)  :- bus_schedule(B, S), bus_position(B, P), P < S - 10.
    bus_bunching(L) :- bus_line(B1, L), bus_line(B2, L), bus_delayed(B1), bus_delayed(B2), B1 < B2.

    % -- actions (single-input rules: no extra coupling) --
    give_notification(X) :- traffic_jam(X).
    give_notification(X) :- car_fire(X).
    give_notification(X) :- breakdown(X).
    give_notification(X) :- weather_alert(X).
    reroute(L) :- bus_bunching(L).
    close_road(X) :- car_fire(X), icy_road(X).
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use asp_core::Symbols;
    use asp_parser::parse_program;
    use sr_core::{AnalysisConfig, DependencyAnalysis};

    #[test]
    fn programs_parse() {
        let syms = Symbols::new();
        assert_eq!(parse_program(&syms, PROGRAM_P).unwrap().rules.len(), 6);
        assert_eq!(parse_program(&syms, &program_p_prime()).unwrap().rules.len(), 7);
        assert_eq!(parse_program(&syms, LARGE_TRAFFIC).unwrap().rules.len(), 17);
    }

    #[test]
    fn large_traffic_decomposes_into_four_communities() {
        let syms = Symbols::new();
        let program = parse_program(&syms, LARGE_TRAFFIC).unwrap();
        let a =
            DependencyAnalysis::analyze(&syms, &program, None, &AnalysisConfig::default()).unwrap();
        assert_eq!(a.inpre.len(), 13);
        // traffic | vehicles∪weather (joined by close_road) | fog | bus.
        assert_eq!(a.plan.communities, 4);
        assert!(a.plan.duplicated().is_empty(), "components need no duplication");
        assert!(a.verify_plan(&syms).is_empty());
        // bus_line joins itself in bus_bunching's body: self-loop expected.
        let bus_line = a
            .input_graph
            .nodes
            .iter()
            .position(|p| &*syms.resolve(p.name) == "bus_line")
            .expect("bus_line is an input");
        assert!(a.input_graph.graph.has_self_loop(bus_line));
    }

    #[test]
    fn large_traffic_pr_dep_is_exact() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        use asp_solver::SolverConfig;
        use sr_core::{
            window_accuracy, ParallelMode, ParallelReasoner, PlanPartitioner, Projection,
            ReasonerConfig, SingleReasoner, UnknownPredicate,
        };
        use sr_stream::{FaithfulGenerator, Window, WorkloadGenerator};
        use std::sync::Arc;

        let syms = Symbols::new();
        let program = parse_program(&syms, LARGE_TRAFFIC).unwrap();
        let a =
            DependencyAnalysis::analyze(&syms, &program, None, &AnalysisConfig::default()).unwrap();
        let names: Vec<String> = a.inpre.iter().map(|p| syms.resolve(p.name).to_string()).collect();
        let mut generator = FaithfulGenerator::new(names, 9);
        let window = Window::new(0, generator.window(2_000));

        let mut r = SingleReasoner::new(&syms, &program, None, SolverConfig::default()).unwrap();
        let base = r.process(&window).unwrap();
        let mut pr = ParallelReasoner::new(
            &syms,
            &program,
            Some(&a.inpre),
            Arc::new(PlanPartitioner::new(a.plan.clone(), UnknownPredicate::Partition0)),
            ReasonerConfig { mode: ParallelMode::Sequential, ..Default::default() },
        )
        .unwrap();
        let par = pr.process(&window).unwrap();
        let acc = window_accuracy(&syms, &base.answers, &par.answers, &Projection::All);
        assert_eq!(acc, 1.0);
    }
}
