//! Benchmark harness for the ICDE'17 reproduction: experiment grid runner,
//! table/CSV reporting and the paper's programs. The `repro` binary
//! regenerates Figures 7-10 plus the ablations; Criterion benches under
//! `benches/` time the same pipelines.

#![warn(missing_docs)]

pub mod analysis;
pub mod chaos;
pub mod delta_grounding;
pub mod experiment;
pub mod gate;
pub mod incremental;
pub mod join_planning;
pub mod multi_tenant;
pub mod observability;
pub mod programs;
pub mod report;
pub mod throughput;

pub use analysis::{analysis_json, run_analysis, AnalysisBenchConfig, AnalysisResult, AnalysisRun};
pub use chaos::{chaos_json, run_chaos, ChaosConfig, ChaosResult};
pub use delta_grounding::{
    delta_grounding_json, run_delta_grounding, DeltaGroundingConfig, DeltaGroundingResult,
    DeltaGroundingRun,
};
pub use experiment::{run, Cell, ExperimentBench, ExperimentConfig, ExperimentResult, Series};
pub use gate::{check_record, parallelism_dependent, GateSummary};
pub use incremental::{
    incremental_json, run_incremental, IncrementalConfig, IncrementalResult, IncrementalRun,
};
pub use join_planning::{
    join_planning_json, run_join_planning, JoinPlanningChurn, JoinPlanningConfig,
    JoinPlanningResult, JoinPlanningRun, SkewedJoinGenerator, JOIN_HEAVY,
};
pub use multi_tenant::{
    multi_tenant_json, run_multi_tenant, MultiTenantConfig, MultiTenantResult, MultiTenantRun,
};
pub use observability::{
    observability_json, run_observability, ObservabilityConfig, ObservabilityResult,
};
pub use programs::{program_p_prime, PROGRAM_P, RULE_R7};
pub use report::{csv, table, Measure};
pub use throughput::{
    outputs_match, render_output, run_throughput, sequential_baseline, throughput_json,
    ThroughputConfig, ThroughputResult, ThroughputRun,
};
