//! Multi-window throughput experiment: the window-at-a-time baseline versus
//! the pipelined [`StreamEngine`] at increasing numbers of windows in
//! flight, on the paper's traffic workload. Emits `BENCH_throughput.json`
//! via [`throughput_json`] (the workspace has no JSON serializer dependency,
//! so the emission is hand-rolled).

use asp_core::{AspError, Symbols};
use sr_core::{
    duration_ms, AnalysisConfig, DependencyAnalysis, EngineConfig, EngineOutput, EngineStats,
    LatencyStats, ParallelReasoner, PlanPartitioner, Reasoner, ReasonerConfig, ReasonerOutput,
    StreamEngine, UnknownPredicate,
};
use sr_stream::{paper_generator, GeneratorKind, Window};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Throughput experiment definition.
#[derive(Clone, Debug)]
pub struct ThroughputConfig {
    /// ASP source of the program under test.
    pub program: String,
    /// Workload generator mode.
    pub generator: GeneratorKind,
    /// Items per window.
    pub window_size: usize,
    /// Number of windows streamed end to end.
    pub windows: usize,
    /// Numbers of windows in flight to sweep (each gets its own engine run).
    pub in_flight: Vec<usize>,
    /// Workload seed.
    pub seed: u64,
}

impl ThroughputConfig {
    /// The default sweep: 24 windows of 2,000 items, 1/2/4 in flight.
    pub fn paper(program: &str) -> Self {
        ThroughputConfig {
            program: program.to_string(),
            generator: GeneratorKind::CorrelatedSparse,
            window_size: 2_000,
            windows: 24,
            in_flight: vec![1, 2, 4],
            seed: 2017,
        }
    }

    /// A smoke-test sweep for CI / `--quick`.
    pub fn quick(program: &str) -> Self {
        ThroughputConfig { window_size: 400, windows: 8, ..Self::paper(program) }
    }
}

/// One engine run of the sweep.
#[derive(Clone, Debug)]
pub struct ThroughputRun {
    /// Windows in flight (engine lanes).
    pub in_flight: usize,
    /// Engine throughput statistics.
    pub stats: EngineStats,
    /// Whether the ordered engine output was byte-identical to the
    /// sequential baseline's rendered answers.
    pub output_identical: bool,
}

/// Result of the throughput experiment.
#[derive(Clone, Debug)]
pub struct ThroughputResult {
    /// Items per window.
    pub window_size: usize,
    /// Windows streamed.
    pub windows: usize,
    /// The sequential window-at-a-time baseline, expressed in the same
    /// statistics shape as the engine runs.
    pub baseline: EngineStats,
    /// The engine sweep.
    pub runs: Vec<ThroughputRun>,
}

impl ThroughputResult {
    /// Best windows/s speedup of any engine run over the baseline.
    pub fn best_speedup(&self) -> f64 {
        if self.baseline.windows_per_sec <= 0.0 {
            return 0.0;
        }
        self.runs
            .iter()
            .map(|r| r.stats.windows_per_sec / self.baseline.windows_per_sec)
            .fold(0.0, f64::max)
    }
}

/// Renders every answer set of a reasoner output, one per line — the
/// canonical form for byte-identity checks between engine and baseline.
pub fn render_output(syms: &Symbols, out: &ReasonerOutput) -> String {
    let mut s = String::new();
    for ans in &out.answers {
        let _ = writeln!(s, "{}", ans.display(syms));
    }
    s
}

/// True when the engine's ordered outputs render byte-identically to the
/// baseline's rendered answers (an errored window never matches).
pub fn outputs_match(syms: &Symbols, outputs: &[EngineOutput], expected: &[String]) -> bool {
    outputs.len() == expected.len()
        && outputs.iter().zip(expected).all(|(out, expected)| {
            out.result.as_ref().map(|o| render_output(syms, o)).as_deref() == Ok(expected)
        })
}

/// Runs `reasoner` over `windows` strictly window-at-a-time, returning the
/// baseline throughput statistics (in the engine's stats shape) plus each
/// window's rendered answers for identity checks.
pub fn sequential_baseline(
    syms: &Symbols,
    reasoner: &mut dyn Reasoner,
    windows: &[Window],
) -> Result<(EngineStats, Vec<String>), AspError> {
    let mut rendered = Vec::with_capacity(windows.len());
    let mut latencies = Vec::with_capacity(windows.len());
    let items_total: u64 = windows.iter().map(|w| w.len() as u64).sum();
    let t0 = Instant::now();
    for window in windows {
        let t = Instant::now();
        let out = reasoner.process(window)?;
        latencies.push(duration_ms(t.elapsed()));
        rendered.push(render_output(syms, &out));
    }
    let elapsed = t0.elapsed();
    let stats = EngineStats {
        windows: windows.len() as u64,
        errors: 0,
        items: items_total,
        elapsed_ms: duration_ms(elapsed),
        windows_per_sec: windows.len() as f64 / elapsed.as_secs_f64(),
        items_per_sec: items_total as f64 / elapsed.as_secs_f64(),
        // No engine, no submit path: the key is honestly absent from the
        // JSON rather than fabricated as 0.0 (see `EngineStats::to_json`).
        submit_blocked_ms: None,
        incremental: None,
        lanes: Vec::new(),
        queue_high_water: 0,
        latency: LatencyStats::from_samples(&latencies),
        tenants: Vec::new(),
        dedup: None,
        // Same honesty rule: the baseline has no recovery machinery.
        failure: None,
        admission: None,
    };
    Ok((stats, rendered))
}

/// Runs the sweep: one sequential baseline pass, then one pipelined engine
/// pass per `in_flight` value, each verified against the baseline's ordered
/// rendered output.
pub fn run_throughput(config: &ThroughputConfig) -> Result<ThroughputResult, AspError> {
    let syms = Symbols::new();
    let program = asp_parser::parse_program(&syms, &config.program)?;
    let analysis = DependencyAnalysis::analyze(&syms, &program, None, &AnalysisConfig::default())?;
    let partitioner: Arc<dyn sr_core::Partitioner> =
        Arc::new(PlanPartitioner::new(analysis.plan.clone(), UnknownPredicate::Partition0));
    let reasoner_cfg = ReasonerConfig::default();

    // The whole stream is pre-generated so every run sees identical windows.
    let mut generator = paper_generator(config.generator, config.seed);
    let windows: Vec<Window> = (0..config.windows)
        .map(|i| Window::new(i as u64, generator.window(config.window_size)))
        .collect();

    // Window-at-a-time baseline: PR_Dep, strictly sequential stream order.
    let mut baseline_reasoner = ParallelReasoner::new(
        &syms,
        &program,
        Some(&analysis.inpre),
        partitioner.clone(),
        reasoner_cfg.clone(),
    )?;
    let (baseline, baseline_rendered) =
        sequential_baseline(&syms, &mut baseline_reasoner, &windows)?;

    // Pipelined engine sweep: lanes share one worker pool sized so each
    // in-flight window can still fan out over its partitions.
    let mut runs = Vec::new();
    for &in_flight in &config.in_flight {
        let mut engine = StreamEngine::with_partitioned_lanes(
            &syms,
            &program,
            Some(&analysis.inpre),
            partitioner.clone(),
            reasoner_cfg.clone(),
            EngineConfig { in_flight, queue_depth: in_flight, ..Default::default() },
        )?;
        for window in &windows {
            engine.submit(window.clone())?;
        }
        let report = engine.finish();
        let output_identical = outputs_match(&syms, &report.outputs, &baseline_rendered);
        runs.push(ThroughputRun { in_flight, stats: report.stats, output_identical });
    }

    Ok(ThroughputResult {
        window_size: config.window_size,
        windows: config.windows,
        baseline,
        runs,
    })
}

/// Renders the result as the `BENCH_throughput.json` document.
pub fn throughput_json(result: &ThroughputResult) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"window_size\": {},", result.window_size);
    let _ = writeln!(out, "  \"windows\": {},", result.windows);
    let _ = writeln!(out, "  \"baseline\": {},", result.baseline.to_json());
    let _ = writeln!(out, "  \"runs\": [");
    for (i, run) in result.runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"in_flight\": {}, \"ordered_output_identical\": {}, \"stats\": {}}}{}",
            run.in_flight,
            run.output_identical,
            run.stats.to_json(),
            if i + 1 < result.runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"best_speedup_windows_per_sec\": {:.4}", result.best_speedup());
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::PROGRAM_P;

    #[test]
    fn quick_sweep_is_ordered_and_identical_to_baseline() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        let cfg = ThroughputConfig {
            window_size: 200,
            windows: 4,
            in_flight: vec![1, 2],
            ..ThroughputConfig::quick(PROGRAM_P)
        };
        let result = run_throughput(&cfg).unwrap();
        assert_eq!(result.runs.len(), 2);
        for run in &result.runs {
            assert!(run.output_identical, "in_flight={} diverged", run.in_flight);
            assert_eq!(run.stats.windows, 4);
            assert_eq!(run.stats.errors, 0);
        }
        assert!(result.baseline.windows_per_sec > 0.0);
    }

    #[test]
    fn json_document_shape() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        let cfg = ThroughputConfig {
            window_size: 100,
            windows: 2,
            in_flight: vec![2],
            ..ThroughputConfig::quick(PROGRAM_P)
        };
        let result = run_throughput(&cfg).unwrap();
        let json = throughput_json(&result);
        assert!(json.contains("\"baseline\":"));
        assert!(json.contains("\"in_flight\": 2"));
        assert!(json.contains("\"ordered_output_identical\": true"));
        assert!(json.contains("\"best_speedup_windows_per_sec\":"));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
