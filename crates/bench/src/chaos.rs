//! Chaos experiment: the pipelined [`StreamEngine`] under deterministic
//! fault injection. One fault-free engine pass proves the compiled-in hooks
//! are inert (byte-identity to the sequential oracle), then a faulted pass —
//! worker panics, corrupted deltas, cache invalidations and partition
//! slowdowns longer than the window deadline — measures how the recovery
//! machinery degrades: every window must still be emitted in order, every
//! *clean* (non-degraded, non-errored) window must render byte-identically
//! to the fault-free oracle, and degraded windows must be flagged — never
//! silently wrong. Emits `BENCH_chaos.json` via [`chaos_json`]; its headline
//! `degraded_window_fraction` is gated **from above** by the record's own
//! `degraded_fraction_ceiling` in `repro check`.

use crate::throughput::{outputs_match, render_output, sequential_baseline};
use asp_core::{AspError, Symbols};
use sr_core::{
    fault, AnalysisConfig, DependencyAnalysis, EngineConfig, EngineOutput, EngineStats, FaultPlan,
    FaultSite, IncrementalReasoner, PlanPartitioner, ReasonerConfig, StreamEngine,
    UnknownPredicate,
};
use sr_stream::{paper_generator, GeneratorKind, Window};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Chaos experiment definition.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// ASP source of the program under test.
    pub program: String,
    /// Workload generator mode.
    pub generator: GeneratorKind,
    /// Items per window.
    pub window_size: usize,
    /// Number of windows streamed end to end per pass.
    pub windows: usize,
    /// Windows in flight (engine lanes).
    pub in_flight: usize,
    /// Injection rate of the recoverable fault sites (worker panic,
    /// delta corruption, cache invalidation).
    pub fault_rate: f64,
    /// Injection rate of the partition-slowdown site (each hit stalls the
    /// partition for `stall_ms`, blowing the deadline).
    pub slowdown_rate: f64,
    /// Artificial stall per slowdown hit, milliseconds. Must exceed
    /// `deadline_ms` for the degraded-emission path to engage.
    pub stall_ms: u64,
    /// Per-window engine deadline, milliseconds.
    pub deadline_ms: u64,
    /// Gate ceiling recorded in the JSON: `repro check` fails the record
    /// when `degraded_window_fraction` exceeds this.
    pub degraded_fraction_ceiling: f64,
    /// Workload seed (the fault plan derives per-site seeds from it).
    pub seed: u64,
}

impl ChaosConfig {
    /// The default measurement: 48 windows of 1,000 items, 2 in flight,
    /// 5% recoverable faults, 5% slowdowns of 400 ms against a 120 ms
    /// deadline.
    pub fn paper(program: &str) -> Self {
        ChaosConfig {
            program: program.to_string(),
            generator: GeneratorKind::CorrelatedSparse,
            window_size: 1_000,
            windows: 48,
            in_flight: 2,
            fault_rate: 0.05,
            slowdown_rate: 0.05,
            stall_ms: 400,
            deadline_ms: 120,
            degraded_fraction_ceiling: 0.5,
            seed: 2017,
        }
    }

    /// A smoke-test run for CI / `--quick`.
    pub fn quick(program: &str) -> Self {
        ChaosConfig {
            window_size: 300,
            windows: 16,
            stall_ms: 250,
            deadline_ms: 80,
            ..Self::paper(program)
        }
    }
}

/// Result of the chaos experiment.
#[derive(Clone, Debug)]
pub struct ChaosResult {
    /// Items per window.
    pub window_size: usize,
    /// Windows streamed per pass.
    pub windows: usize,
    /// Windows in flight.
    pub in_flight: usize,
    /// Injection rate of the recoverable fault sites.
    pub fault_rate: f64,
    /// Injection rate of the partition-slowdown site.
    pub slowdown_rate: f64,
    /// Artificial stall per slowdown hit, milliseconds.
    pub stall_ms: u64,
    /// Per-window engine deadline, milliseconds.
    pub deadline_ms: u64,
    /// The fault-free engine pass (hooks compiled in, injection disabled,
    /// no deadline) rendered byte-identically to the sequential oracle —
    /// the zero-cost-when-off contract.
    pub hooks_disabled_identical: bool,
    /// Every clean (non-degraded, non-errored) window of the faulted pass
    /// rendered byte-identically to the fault-free oracle — faults degrade
    /// loudly, never corrupt silently.
    pub clean_windows_identical: bool,
    /// Faulted pass: every submitted window id was emitted exactly once, in
    /// submission order.
    pub emission_ordered: bool,
    /// Windows the faulted pass emitted degraded.
    pub degraded_windows: u64,
    /// Windows the faulted pass emitted as loud errors (retries exhausted).
    pub errored_windows: u64,
    /// `degraded_windows` over the windows streamed.
    pub degraded_window_fraction: f64,
    /// p95 of the consecutive-degraded run lengths — how many windows a
    /// recovery took, in windows (0 when nothing degraded).
    pub recovery_windows_p95: f64,
    /// The gate ceiling on `degraded_window_fraction`.
    pub degraded_fraction_ceiling: f64,
    /// Engine statistics of the faulted pass, failure counters included.
    pub faulted: EngineStats,
}

/// One engine pass over `windows` with the given deadline, returning the
/// ordered outputs and the run statistics.
fn engine_pass(
    syms: &Symbols,
    program: &asp_core::Program,
    analysis: &DependencyAnalysis,
    partitioner: &Arc<dyn sr_core::Partitioner>,
    config: &ChaosConfig,
    windows: &[Window],
    deadline_ms: Option<u64>,
) -> Result<(Vec<EngineOutput>, EngineStats), AspError> {
    let mut engine = StreamEngine::with_partitioned_lanes(
        syms,
        program,
        Some(&analysis.inpre),
        partitioner.clone(),
        ReasonerConfig { incremental: true, ..Default::default() },
        EngineConfig {
            in_flight: config.in_flight,
            queue_depth: config.in_flight,
            window_deadline_ms: deadline_ms,
        },
    )?;
    for window in windows {
        engine.submit(window.clone())?;
    }
    let report = engine.finish();
    Ok((report.outputs, report.stats))
}

/// p95 of the degraded-run lengths (consecutive degraded windows), the
/// "recovery time in windows" headline. 0 when nothing degraded.
fn recovery_p95(run_lengths: &[u64]) -> f64 {
    if run_lengths.is_empty() {
        return 0.0;
    }
    let mut sorted = run_lengths.to_vec();
    sorted.sort_unstable();
    let idx = ((sorted.len() as f64 * 0.95).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx] as f64
}

/// Runs the experiment: the sequential fault-free oracle, one engine pass
/// with injection disabled (hooks inert), one with the fault plan installed
/// and the deadline armed. Installs and clears the **process-global** fault
/// plan — callers running concurrently must serialize on
/// [`fault::test_guard`].
pub fn run_chaos(config: &ChaosConfig) -> Result<ChaosResult, AspError> {
    let syms = Symbols::new();
    let program = asp_parser::parse_program(&syms, &config.program)?;
    let analysis = DependencyAnalysis::analyze(&syms, &program, None, &AnalysisConfig::default())?;
    let partitioner: Arc<dyn sr_core::Partitioner> =
        Arc::new(PlanPartitioner::new(analysis.plan.clone(), UnknownPredicate::Partition0));

    // The whole stream is pre-generated so every pass sees identical
    // windows, making byte-identity across fault regimes meaningful.
    let mut generator = paper_generator(config.generator, config.seed);
    let windows: Vec<Window> = (0..config.windows)
        .map(|i| Window::new(i as u64, generator.window(config.window_size)))
        .collect();

    // Make the baseline state explicit: a prior crash mid-run must not leak
    // an installed plan into the "fault-free" passes.
    fault::clear();

    // Fault-free oracle: the strictly sequential incremental pass — the
    // same backend the engine lanes run.
    let mut oracle = IncrementalReasoner::new(
        &syms,
        &program,
        Some(&analysis.inpre),
        partitioner.clone(),
        ReasonerConfig { incremental: true, ..Default::default() },
    )?;
    let (_, oracle_rendered) = sequential_baseline(&syms, &mut oracle, &windows)?;

    // Pass 1 — hooks compiled in, injection disabled, no deadline: the
    // engine must render byte-identically to the oracle.
    let (clean_outputs, _) =
        engine_pass(&syms, &program, &analysis, &partitioner, config, &windows, None)?;
    let hooks_disabled_identical = outputs_match(&syms, &clean_outputs, &oracle_rendered);

    // Pass 2 — the fault plan installed and the deadline armed. Per-site
    // seeds are derived from the workload seed so the whole pass is
    // reproducible from one number.
    fault::install(
        FaultPlan::new()
            .with_rule(FaultSite::WorkerPanic, config.fault_rate, config.seed)
            .with_rule(FaultSite::DeltaCorrupt, config.fault_rate, config.seed.wrapping_add(1))
            .with_rule(FaultSite::CacheInvalidate, config.fault_rate, config.seed.wrapping_add(2))
            .with_rule(
                FaultSite::PartitionSlowdown,
                config.slowdown_rate,
                config.seed.wrapping_add(3),
            )
            .with_stall(Duration::from_millis(config.stall_ms)),
    );
    let faulted = engine_pass(
        &syms,
        &program,
        &analysis,
        &partitioner,
        config,
        &windows,
        Some(config.deadline_ms),
    );
    fault::clear();
    let (faulted_outputs, faulted_stats) = faulted?;

    // Score the faulted pass: ordered emission, clean-window identity,
    // degraded-run lengths.
    let emission_ordered = faulted_outputs.len() == windows.len()
        && faulted_outputs.iter().enumerate().all(|(i, out)| out.seq == i as u64);
    let mut clean_windows_identical = true;
    let mut degraded_windows = 0u64;
    let mut errored_windows = 0u64;
    let mut run_lengths: Vec<u64> = Vec::new();
    let mut current_run = 0u64;
    for (out, expected) in faulted_outputs.iter().zip(&oracle_rendered) {
        if out.degraded {
            degraded_windows += 1;
            current_run += 1;
            continue;
        }
        if current_run > 0 {
            run_lengths.push(current_run);
            current_run = 0;
        }
        match &out.result {
            Ok(output) => {
                clean_windows_identical &= render_output(&syms, output) == *expected;
            }
            // Exhausted retries surface as loud per-window errors — allowed,
            // counted, and never identity-relevant.
            Err(_) => errored_windows += 1,
        }
    }
    if current_run > 0 {
        run_lengths.push(current_run);
    }

    Ok(ChaosResult {
        window_size: config.window_size,
        windows: config.windows,
        in_flight: config.in_flight,
        fault_rate: config.fault_rate,
        slowdown_rate: config.slowdown_rate,
        stall_ms: config.stall_ms,
        deadline_ms: config.deadline_ms,
        hooks_disabled_identical,
        clean_windows_identical,
        emission_ordered,
        degraded_windows,
        errored_windows,
        degraded_window_fraction: degraded_windows as f64 / config.windows.max(1) as f64,
        recovery_windows_p95: recovery_p95(&run_lengths),
        degraded_fraction_ceiling: config.degraded_fraction_ceiling,
        faulted: faulted_stats,
    })
}

/// Renders the result as the `BENCH_chaos.json` document.
pub fn chaos_json(result: &ChaosResult) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"window_size\": {},", result.window_size);
    let _ = writeln!(out, "  \"windows\": {},", result.windows);
    let _ = writeln!(out, "  \"in_flight\": {},", result.in_flight);
    let _ = writeln!(out, "  \"fault_rate\": {:.4},", result.fault_rate);
    let _ = writeln!(out, "  \"slowdown_rate\": {:.4},", result.slowdown_rate);
    let _ = writeln!(out, "  \"stall_ms\": {},", result.stall_ms);
    let _ = writeln!(out, "  \"deadline_ms\": {},", result.deadline_ms);
    let _ = writeln!(out, "  \"faulted\": {},", result.faulted.to_json());
    let _ = writeln!(out, "  \"degraded_windows\": {},", result.degraded_windows);
    let _ = writeln!(out, "  \"errored_windows\": {},", result.errored_windows);
    let _ = writeln!(out, "  \"emission_ordered\": {},", result.emission_ordered);
    let _ =
        writeln!(out, "  \"degraded_window_fraction\": {:.4},", result.degraded_window_fraction);
    let _ = writeln!(out, "  \"recovery_windows_p95\": {:.4},", result.recovery_windows_p95);
    let _ =
        writeln!(out, "  \"degraded_fraction_ceiling\": {:.4},", result.degraded_fraction_ceiling);
    let _ = writeln!(out, "  \"hooks_disabled_identical\": {},", result.hooks_disabled_identical);
    let _ = writeln!(out, "  \"clean_windows_identical\": {}", result.clean_windows_identical);
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::PROGRAM_P;

    fn tiny() -> ChaosConfig {
        ChaosConfig {
            window_size: 150,
            windows: 6,
            stall_ms: 200,
            deadline_ms: 60,
            ..ChaosConfig::quick(PROGRAM_P)
        }
    }

    #[test]
    fn chaos_run_degrades_loudly_never_silently() {
        let _guard = fault::test_guard();
        let result = run_chaos(&tiny()).unwrap();
        assert!(result.hooks_disabled_identical, "inert hooks changed engine output");
        assert!(result.clean_windows_identical, "a clean window diverged from the oracle");
        assert!(result.emission_ordered, "faulted pass broke ordered emission");
        assert!(result.degraded_window_fraction <= result.degraded_fraction_ceiling);
        assert!(
            result.faulted.failure.is_some(),
            "faulted pass must carry the failure snapshot (deadline + injection were on)"
        );
    }

    #[test]
    fn json_document_shape() {
        let _guard = fault::test_guard();
        let result = run_chaos(&tiny()).unwrap();
        let json = chaos_json(&result);
        assert!(json.contains("\"faulted\":"));
        assert!(json.contains("\"degraded_window_fraction\":"));
        assert!(json.contains("\"recovery_windows_p95\":"));
        assert!(json.contains("\"degraded_fraction_ceiling\":"));
        assert!(json.contains("\"hooks_disabled_identical\": true"));
        assert!(json.contains("\"clean_windows_identical\": true"));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn recovery_p95_of_run_lengths() {
        assert_eq!(recovery_p95(&[]), 0.0);
        assert_eq!(recovery_p95(&[2]), 2.0);
        assert_eq!(recovery_p95(&[1, 1, 1, 1, 1, 1, 1, 1, 1, 4]), 4.0);
    }
}
