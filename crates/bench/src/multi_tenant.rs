//! Multi-tenant serving experiment: N tenant programs over one shared
//! sliding-window stream, the [`MultiTenantEngine`] versus N independent
//! single-program pipelines, swept over tenant count × duplicate ratio.
//! Emits `results/BENCH_multi_tenant.json` via [`multi_tenant_json`].
//!
//! The duplicate ratio controls how many tenants run the *same* program
//! text: at ratio 1.0 every tenant shares one serving entry and the
//! scheduler runs each window once, so the speedup over N independent
//! pipelines approaches N — that cell (at the largest swept tenant count)
//! is the headline `shared_work_speedup_at_dup1` the CI gate checks. At
//! ratio 0.0 every tenant gets a unique program variant (a distinct
//! `tenant_tag(<i>).` fact appended), so no runs dedup and the comparison
//! isolates the scheduler's overhead. Both sides run
//! [`ParallelMode::Sequential`] incremental pipelines so the measured gap
//! is shared *work*, not thread-pool scheduling.
//!
//! Correctness bar: every tenant's output under the shared engine is
//! byte-identical to its own independent pipeline, window by window, in
//! every swept cell (`output_identical_all` in the record).

use crate::programs::{program_p_prime, LARGE_TRAFFIC, PROGRAM_P};
use crate::throughput::render_output;
use asp_core::{AspError, Symbols};
use asp_parser::parse_program;
use sr_core::{
    duration_ms, AnalysisConfig, DedupSnapshot, DependencyAnalysis, EngineStats,
    IncrementalReasoner, MultiTenantEngine, ParallelMode, PlanPartitioner, ReasonerConfig,
    TenantPartitioner,
};
use sr_stream::{FaithfulGenerator, SlidingWindower, Window, WorkloadGenerator};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Multi-tenant experiment definition.
#[derive(Clone, Debug)]
pub struct MultiTenantConfig {
    /// Distinct ASP programs tenants draw from. `programs[0]` is the one
    /// duplicated tenants share; the rest are cycled over the remaining
    /// tenants (each uniquified with a `tenant_tag(<i>).` fact).
    pub programs: Vec<String>,
    /// Items per window.
    pub window_size: usize,
    /// Slide (items) between windows.
    pub slide: usize,
    /// Windows streamed per cell.
    pub windows: usize,
    /// Tenant counts to sweep.
    pub tenant_counts: Vec<usize>,
    /// Duplicate ratios to sweep (fraction of tenants on `programs[0]`).
    pub dup_ratios: Vec<f64>,
    /// Workload seed.
    pub seed: u64,
    /// Capacity of the shared partition cache (and of each independent
    /// pipeline's private cache, so neither side is starved).
    pub cache_capacity: usize,
}

impl MultiTenantConfig {
    /// The default sweep: 12 sliding windows of 1,200 items (slide 300)
    /// over the union workload of P, P' and the large traffic set, at
    /// 2/4/8 tenants × duplicate ratios 0.0/0.5/1.0.
    pub fn paper() -> Self {
        MultiTenantConfig {
            programs: vec![PROGRAM_P.to_string(), program_p_prime(), LARGE_TRAFFIC.to_string()],
            window_size: 1_200,
            slide: 300,
            windows: 12,
            tenant_counts: vec![2, 4, 8],
            dup_ratios: vec![0.0, 0.5, 1.0],
            seed: 2017,
            cache_capacity: 256,
        }
    }

    /// A smoke-test sweep for CI / `--quick`.
    pub fn quick() -> Self {
        MultiTenantConfig {
            window_size: 240,
            slide: 60,
            windows: 6,
            tenant_counts: vec![2, 8],
            dup_ratios: vec![0.0, 1.0],
            ..Self::paper()
        }
    }
}

/// One `(tenant count, duplicate ratio)` cell's measurement.
#[derive(Clone, Debug)]
pub struct MultiTenantRun {
    /// Tenants served in this cell.
    pub tenants: usize,
    /// Fraction of tenants running the shared `programs[0]`.
    pub dup_ratio: f64,
    /// Wall time of the N independent single-program pipelines (ms).
    pub independent_ms: f64,
    /// Wall time of the shared [`MultiTenantEngine`] pass (ms).
    pub shared_ms: f64,
    /// `independent_ms / shared_ms`.
    pub speedup: f64,
    /// Whether every tenant's shared-engine output was byte-identical to
    /// its own independent pipeline, window by window.
    pub output_identical: bool,
    /// The scheduler's dedup counters after the pass.
    pub dedup: DedupSnapshot,
}

/// Result of the multi-tenant experiment.
#[derive(Clone, Debug)]
pub struct MultiTenantResult {
    /// Items per window.
    pub window_size: usize,
    /// Slide (items) between windows.
    pub slide: usize,
    /// Windows per cell.
    pub windows: usize,
    /// Shared-cache capacity.
    pub cache_capacity: usize,
    /// Distinct source programs in the pool.
    pub programs: usize,
    /// One measurement per swept cell, in sweep order.
    pub runs: Vec<MultiTenantRun>,
    /// Scheduler stats (per-tenant latency percentiles, dedup counters)
    /// from the headline cell, when it was swept.
    pub stats: Option<EngineStats>,
}

impl MultiTenantResult {
    /// The headline cell: duplicate ratio 1.0 at the largest swept tenant
    /// count, when swept.
    pub fn at_dup1(&self) -> Option<&MultiTenantRun> {
        self.runs.iter().filter(|r| (r.dup_ratio - 1.0).abs() < 1e-9).max_by_key(|r| r.tenants)
    }

    /// True when every cell's outputs matched the independent pipelines.
    pub fn output_identical_all(&self) -> bool {
        self.runs.iter().all(|r| r.output_identical)
    }
}

/// The union of every program's input predicate names, in first-seen order
/// — the generator's vocabulary, so every tenant's inputs occur in the
/// shared stream.
fn input_union(programs: &[String]) -> Result<Vec<String>, AspError> {
    let mut names: Vec<String> = Vec::new();
    for source in programs {
        let syms = Symbols::new();
        let program = parse_program(&syms, source)?;
        let analysis =
            DependencyAnalysis::analyze(&syms, &program, None, &AnalysisConfig::default())?;
        for p in &analysis.inpre {
            let name = syms.resolve(p.name).to_string();
            if !names.contains(&name) {
                names.push(name);
            }
        }
    }
    Ok(names)
}

/// Pre-generates the sliding-window sequence every cell replays.
fn sliding_windows(config: &MultiTenantConfig, predicates: Vec<String>) -> Vec<Window> {
    let mut generator = FaithfulGenerator::new(predicates, config.seed);
    let total = config.window_size + config.slide * (config.windows.saturating_sub(1));
    let mut windower = SlidingWindower::new(config.window_size, config.slide);
    let mut windows = Vec::with_capacity(config.windows);
    for item in generator.window(total) {
        if let Some(w) = windower.push(item) {
            windows.push(w);
            if windows.len() == config.windows {
                break;
            }
        }
    }
    windows
}

/// The program source tenant `i` runs in a cell with `n_dup` duplicated
/// tenants: the first `n_dup` share `programs[0]` verbatim; the rest cycle
/// the remaining programs, each uniquified with a `tenant_tag(<i>).` fact
/// so its fingerprint (and serving entry) is its own.
fn tenant_source(config: &MultiTenantConfig, i: usize, n_dup: usize) -> String {
    if i < n_dup {
        return config.programs[0].clone();
    }
    let pool = if config.programs.len() > 1 { &config.programs[1..] } else { &config.programs[..] };
    let base = &pool[(i - n_dup) % pool.len()];
    format!("{base}\ntenant_tag({i}).\n")
}

/// Runs one tenant's independent pipeline over all windows, returning wall
/// time and per-window rendered answers.
fn independent_pass(
    source: &str,
    cfg: &ReasonerConfig,
    windows: &[Window],
) -> Result<(f64, Vec<String>), AspError> {
    let syms = Symbols::new();
    let program = parse_program(&syms, source)?;
    let analysis = DependencyAnalysis::analyze(&syms, &program, None, &AnalysisConfig::default())?;
    let partitioner: Arc<dyn sr_core::Partitioner> =
        Arc::new(PlanPartitioner::new(analysis.plan.clone(), cfg.unknown));
    let mut reasoner =
        IncrementalReasoner::new(&syms, &program, Some(&analysis.inpre), partitioner, cfg.clone())?;
    let mut rendered = Vec::with_capacity(windows.len());
    let t0 = Instant::now();
    for window in windows {
        let out = reasoner.process(window)?;
        rendered.push(render_output(&syms, &out));
    }
    Ok((duration_ms(t0.elapsed()), rendered))
}

/// Runs the sweep: per cell, N independent incremental pipelines versus one
/// shared [`MultiTenantEngine`] over the identical window sequence, every
/// tenant byte-checked against its own pipeline.
pub fn run_multi_tenant(config: &MultiTenantConfig) -> Result<MultiTenantResult, AspError> {
    assert!(!config.programs.is_empty(), "at least one program");
    let predicates = input_union(&config.programs)?;
    let windows = sliding_windows(config, predicates);
    assert_eq!(windows.len(), config.windows, "generator fed every window");
    let cfg = ReasonerConfig {
        mode: ParallelMode::Sequential,
        incremental: true,
        cache_capacity: config.cache_capacity,
        ..Default::default()
    };
    let max_tenants = config.tenant_counts.iter().copied().max().unwrap_or(0);

    let mut runs = Vec::new();
    let mut stats = None;
    for &tenants in &config.tenant_counts {
        for &dup_ratio in &config.dup_ratios {
            let n_dup = ((tenants as f64) * dup_ratio).round() as usize;
            let sources: Vec<String> =
                (0..tenants).map(|i| tenant_source(config, i, n_dup)).collect();

            // N independent pipelines, each with its own cache of the same
            // capacity (the shared side holds one such cache for everyone).
            let mut independent_ms = 0.0;
            let mut expected: Vec<Vec<String>> = Vec::with_capacity(tenants);
            for source in &sources {
                let (ms, rendered) = independent_pass(source, &cfg, &windows)?;
                independent_ms += ms;
                expected.push(rendered);
            }

            // One shared engine serving every tenant.
            let mut engine = MultiTenantEngine::new(cfg.clone());
            for (i, source) in sources.iter().enumerate() {
                engine.admit(&format!("t{i}"), source, TenantPartitioner::Dependency)?;
            }
            let mut got: Vec<Vec<String>> = vec![Vec::new(); tenants];
            let t0 = Instant::now();
            for window in &windows {
                for out in engine.process(window)? {
                    let idx: usize = out.tenant[1..].parse().expect("tenant ids are t<index>");
                    got[idx].push(render_output(&out.syms, &out.output));
                }
            }
            let shared_ms = duration_ms(t0.elapsed());

            let output_identical = got == expected;
            let dedup = engine.dedup_snapshot();
            if tenants == max_tenants && (dup_ratio - 1.0).abs() < 1e-9 {
                stats = Some(engine.stats());
            }
            runs.push(MultiTenantRun {
                tenants,
                dup_ratio,
                independent_ms,
                shared_ms,
                speedup: if shared_ms > 0.0 { independent_ms / shared_ms } else { 0.0 },
                output_identical,
                dedup,
            });
        }
    }

    Ok(MultiTenantResult {
        window_size: config.window_size,
        slide: config.slide,
        windows: config.windows,
        cache_capacity: config.cache_capacity,
        programs: config.programs.len(),
        runs,
        stats,
    })
}

/// Renders the result as the `BENCH_multi_tenant.json` document.
pub fn multi_tenant_json(result: &MultiTenantResult) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"workload\": \"faithful_union_sliding\",");
    let _ = writeln!(out, "  \"mode\": \"sequential\",");
    let _ = writeln!(out, "  \"baseline\": \"independent_incremental_pipelines\",");
    let _ = writeln!(out, "  \"window_size\": {},", result.window_size);
    let _ = writeln!(out, "  \"slide\": {},", result.slide);
    let _ = writeln!(out, "  \"windows\": {},", result.windows);
    let _ = writeln!(out, "  \"cache_capacity\": {},", result.cache_capacity);
    let _ = writeln!(out, "  \"programs\": {},", result.programs);
    let _ = writeln!(out, "  \"sweep\": [");
    for (i, run) in result.runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"tenants\": {}, \"dup_ratio\": {:.2}, \"independent_ms\": {:.4}, \
             \"shared_ms\": {:.4}, \"speedup\": {:.4}, \"output_identical\": {}, \
             \"dedup\": {}}}{}",
            run.tenants,
            run.dup_ratio,
            run.independent_ms,
            run.shared_ms,
            run.speedup,
            run.output_identical,
            run.dedup.to_json(),
            if i + 1 < result.runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    // Omitted (not fabricated as 0.0) when the dup-1.0 cell wasn't swept:
    // the CI gate then reports a missing headline key instead of a fake
    // regression.
    if let Some(run) = result.at_dup1() {
        let _ = writeln!(out, "  \"shared_work_speedup_at_dup1\": {:.4},", run.speedup);
    }
    if let Some(stats) = &result.stats {
        let _ = writeln!(out, "  \"engine\": {},", stats.to_json());
    }
    let _ = writeln!(out, "  \"output_identical_all\": {}", result.output_identical_all());
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_config() -> MultiTenantConfig {
        MultiTenantConfig {
            programs: vec![PROGRAM_P.to_string(), program_p_prime()],
            window_size: 120,
            slide: 30,
            windows: 3,
            tenant_counts: vec![3],
            dup_ratios: vec![0.0, 1.0],
            cache_capacity: 32,
            ..MultiTenantConfig::quick()
        }
    }

    #[test]
    fn every_cell_is_byte_identical_and_dup1_dedups_fully() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        let result = run_multi_tenant(&toy_config()).unwrap();
        assert_eq!(result.runs.len(), 2);
        assert!(result.output_identical_all(), "a tenant diverged from its own pipeline");
        let dup1 = result.at_dup1().expect("dup 1.0 swept");
        assert_eq!(dup1.tenants, 3);
        assert_eq!(
            dup1.dedup.program_runs, result.windows as u64,
            "full duplication runs each window exactly once"
        );
        assert_eq!(dup1.dedup.tenant_windows, 3 * result.windows as u64);
        let dup0 = &result.runs[0];
        assert!((dup0.dup_ratio).abs() < 1e-9);
        assert_eq!(
            dup0.dedup.program_runs,
            3 * result.windows as u64,
            "unique variants share nothing"
        );
        assert_eq!(dup0.dedup.shared_runs_saved, 0);
        let stats = result.stats.as_ref().expect("headline cell captured stats");
        assert_eq!(stats.tenants.len(), 3, "per-tenant latency series");
        assert!(stats.dedup.is_some());
    }

    #[test]
    fn json_document_shape() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        let result = run_multi_tenant(&toy_config()).unwrap();
        let json = multi_tenant_json(&result);
        assert!(json.contains("\"baseline\": \"independent_incremental_pipelines\""));
        assert!(json.contains("\"sweep\": ["));
        assert!(json.contains("\"dup_ratio\": 1.00"));
        assert!(json.contains("\"dedup\": {"));
        assert!(json.contains("\"shared_work_speedup_at_dup1\":"));
        assert!(json.contains("\"engine\": {"));
        assert!(json.contains("\"tenants\": [{"), "per-tenant latency embedded: {json}");
        assert!(json.contains("\"output_identical_all\": true"));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn headline_key_is_omitted_when_dup1_not_swept() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        // Without a dup-1.0 cell there is no shared-work headline; the key
        // (and the headline cell's engine stats) must be omitted rather
        // than fabricated, so the CI gate reports a missing key instead of
        // a fake regression.
        let result =
            run_multi_tenant(&MultiTenantConfig { dup_ratios: vec![0.0], ..toy_config() }).unwrap();
        let json = multi_tenant_json(&result);
        assert!(!json.contains("\"shared_work_speedup_at_dup1\""), "{json}");
        assert!(!json.contains("\"engine\""), "{json}");
        assert!(json.contains("\"output_identical_all\": true"));
    }
}
