//! Incremental-reasoning experiment: sliding windows at several slide/size
//! ratios, full recomputation (`PR_Dep`) versus the fingerprint-cached
//! [`IncrementalReasoner`], on the large traffic rule set with a bursty
//! arrival pattern. Emits `results/BENCH_incremental.json` via
//! [`incremental_json`].
//!
//! Both sides run in [`ParallelMode::Sequential`], so the measured speedup
//! is reasoning *work avoided* by the cache (one core, no partition
//! parallelism hiding it) — the quantity that turns into throughput once
//! the shared worker pool saturates. The stream arrives in predicate-group
//! bursts aligned to the slide ([`BurstyGenerator`]), the regime — batch
//! uploads from one sensor subsystem at a time — where window deltas stay
//! concentrated in few input-dependency partitions.

use crate::programs::LARGE_TRAFFIC;
use crate::throughput::render_output;
use asp_core::{AspError, Symbols};
use sr_core::{
    duration_ms, AnalysisConfig, DependencyAnalysis, IncrementalReasoner, IncrementalSnapshot,
    ParallelMode, ParallelReasoner, PlanPartitioner, Reasoner, ReasonerConfig, UnknownPredicate,
};
use sr_stream::{BurstyGenerator, SlidingWindower, Window, WorkloadGenerator};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Incremental experiment definition.
#[derive(Clone, Debug)]
pub struct IncrementalConfig {
    /// ASP source of the program under test.
    pub program: String,
    /// Items per window; must be divisible by every ratio in `ratios`.
    pub window_size: usize,
    /// size/slide ratios to sweep (`8` means slide = size/8, i.e. 7/8 of
    /// every window overlaps its predecessor; `1` is tumbling).
    pub ratios: Vec<usize>,
    /// Windows emitted per ratio.
    pub windows: usize,
    /// Workload seed.
    pub seed: u64,
    /// Partition-cache capacity (entries) for the incremental side.
    pub cache_capacity: usize,
}

impl IncrementalConfig {
    /// The default sweep: 24 windows of 1,600 items at ratios 8/4/2/1 on the
    /// large traffic program (4 input-dependency communities).
    pub fn paper() -> Self {
        IncrementalConfig {
            program: LARGE_TRAFFIC.to_string(),
            window_size: 1_600,
            ratios: vec![8, 4, 2, 1],
            windows: 24,
            seed: 2017,
            cache_capacity: 64,
        }
    }

    /// A smoke-test sweep for CI / `--quick`.
    pub fn quick() -> Self {
        IncrementalConfig { window_size: 320, windows: 8, ..Self::paper() }
    }
}

/// One slide's measurement.
#[derive(Clone, Debug)]
pub struct IncrementalRun {
    /// Slide (items) of this run.
    pub slide: usize,
    /// `slide / window_size`.
    pub slide_ratio: f64,
    /// Full-recompute wall time over all windows (ms).
    pub baseline_ms: f64,
    /// Incremental wall time over the same windows (ms).
    pub incremental_ms: f64,
    /// `baseline_ms / incremental_ms`.
    pub speedup: f64,
    /// Whether the incremental output was byte-identical to full
    /// recomputation, window by window.
    pub output_identical: bool,
    /// Mean `delta.added` size across windows that carried a delta.
    pub mean_delta_added: f64,
    /// Mean `delta.retracted` size across windows that carried a delta.
    pub mean_delta_retracted: f64,
    /// Cache counters after the incremental pass.
    pub cache: IncrementalSnapshot,
}

/// Result of the incremental experiment.
#[derive(Clone, Debug)]
pub struct IncrementalResult {
    /// Items per window.
    pub window_size: usize,
    /// Windows per run.
    pub windows: usize,
    /// Cache capacity used.
    pub cache_capacity: usize,
    /// Partitions of the dependency plan.
    pub partitions: usize,
    /// One measurement per swept ratio.
    pub runs: Vec<IncrementalRun>,
}

impl IncrementalResult {
    /// The run at slide/size = 1/8, when swept (the headline ratio).
    pub fn at_eighth(&self) -> Option<&IncrementalRun> {
        self.runs.iter().find(|r| (r.slide_ratio - 0.125).abs() < 1e-9)
    }

    /// True when every run's output matched full recomputation.
    pub fn output_identical_all(&self) -> bool {
        self.runs.iter().all(|r| r.output_identical)
    }
}

/// Builds the bursty sliding-window stream for one slide: bursts of `slide`
/// items cycle through the plan's communities, so consecutive windows differ
/// in one community's partition while the rest stay clean. Shared with the
/// delta-grounding experiment ([`crate::delta_grounding`]).
pub(crate) fn bursty_windows(
    analysis: &DependencyAnalysis,
    syms: &Symbols,
    window_size: usize,
    window_count: usize,
    seed: u64,
    slide: usize,
    burst: usize,
) -> Vec<Window> {
    let groups = community_groups(analysis, syms);
    let mut generator = BurstyGenerator::new(groups, burst, window_size as i64, seed);
    let total = window_size + slide * (window_count - 1);
    let mut windower = SlidingWindower::new(window_size, slide);
    let mut windows = Vec::with_capacity(window_count);
    for item in generator.window(total) {
        if let Some(w) = windower.push(item) {
            windows.push(w);
        }
    }
    windows
}

/// The plan's input predicates grouped by community, in a stable order —
/// the group structure both bursty workload builders cycle through.
pub(crate) fn community_groups(analysis: &DependencyAnalysis, syms: &Symbols) -> Vec<Vec<String>> {
    let mut groups: Vec<Vec<String>> = vec![Vec::new(); analysis.plan.communities];
    for p in &analysis.inpre {
        let name = syms.resolve(p.name).to_string();
        if let Some(cs) = analysis.plan.communities_of(&name) {
            for &c in cs {
                groups[c as usize].push(name.clone());
            }
        }
    }
    groups.retain(|g| !g.is_empty());
    for g in &mut groups {
        g.sort(); // plan iteration order is hash-based; keep streams stable
    }
    groups
}

fn build_windows(
    analysis: &DependencyAnalysis,
    syms: &Symbols,
    config: &IncrementalConfig,
    slide: usize,
) -> Vec<Window> {
    bursty_windows(analysis, syms, config.window_size, config.windows, config.seed, slide, slide)
}

/// Runs `reasoner` over `windows`, returning wall time and rendered answers.
fn timed_pass(
    syms: &Symbols,
    reasoner: &mut dyn Reasoner,
    windows: &[Window],
) -> Result<(f64, Vec<String>), AspError> {
    let mut rendered = Vec::with_capacity(windows.len());
    let t0 = Instant::now();
    for window in windows {
        let out = reasoner.process(window)?;
        rendered.push(render_output(syms, &out));
    }
    Ok((duration_ms(t0.elapsed()), rendered))
}

/// Runs the sweep: per ratio, one full-recompute pass and one incremental
/// pass over the identical window sequence, verified for byte-identity.
pub fn run_incremental(config: &IncrementalConfig) -> Result<IncrementalResult, AspError> {
    let syms = Symbols::new();
    let program = asp_parser::parse_program(&syms, &config.program)?;
    let analysis = DependencyAnalysis::analyze(&syms, &program, None, &AnalysisConfig::default())?;
    let partitioner: Arc<dyn sr_core::Partitioner> =
        Arc::new(PlanPartitioner::new(analysis.plan.clone(), UnknownPredicate::Partition0));
    let base_cfg = ReasonerConfig { mode: ParallelMode::Sequential, ..Default::default() };

    let mut runs = Vec::new();
    for &ratio in &config.ratios {
        assert!(ratio > 0 && config.window_size % ratio == 0, "size must divide by ratio {ratio}");
        let slide = config.window_size / ratio;
        let windows = build_windows(&analysis, &syms, config, slide);

        let mut baseline = ParallelReasoner::new(
            &syms,
            &program,
            Some(&analysis.inpre),
            partitioner.clone(),
            base_cfg.clone(),
        )?;
        let (baseline_ms, base_rendered) = timed_pass(&syms, &mut baseline, &windows)?;

        let inc_cfg = ReasonerConfig {
            incremental: true,
            cache_capacity: config.cache_capacity,
            ..base_cfg.clone()
        };
        let mut incremental = IncrementalReasoner::new(
            &syms,
            &program,
            Some(&analysis.inpre),
            partitioner.clone(),
            inc_cfg,
        )?;
        let (incremental_ms, inc_rendered) = timed_pass(&syms, &mut incremental, &windows)?;
        let cache = incremental.cache().counters().snapshot();

        let deltas: Vec<_> = windows.iter().filter_map(|w| w.delta.as_ref()).collect();
        let mean = |f: &dyn Fn(&sr_stream::WindowDelta) -> usize| {
            if deltas.is_empty() {
                0.0
            } else {
                deltas.iter().map(|d| f(d)).sum::<usize>() as f64 / deltas.len() as f64
            }
        };
        runs.push(IncrementalRun {
            slide,
            slide_ratio: slide as f64 / config.window_size as f64,
            baseline_ms,
            incremental_ms,
            speedup: if incremental_ms > 0.0 { baseline_ms / incremental_ms } else { 0.0 },
            output_identical: base_rendered == inc_rendered,
            mean_delta_added: mean(&|d| d.added.len()),
            mean_delta_retracted: mean(&|d| d.retracted.len()),
            cache,
        });
    }

    Ok(IncrementalResult {
        window_size: config.window_size,
        windows: config.windows,
        cache_capacity: config.cache_capacity,
        partitions: analysis.plan.communities,
        runs,
    })
}

/// Renders the result as the `BENCH_incremental.json` document.
pub fn incremental_json(result: &IncrementalResult) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"workload\": \"large_traffic_bursty\",");
    let _ = writeln!(out, "  \"mode\": \"sequential\",");
    let _ = writeln!(out, "  \"window_size\": {},", result.window_size);
    let _ = writeln!(out, "  \"windows\": {},", result.windows);
    let _ = writeln!(out, "  \"cache_capacity\": {},", result.cache_capacity);
    let _ = writeln!(out, "  \"partitions\": {},", result.partitions);
    let _ = writeln!(out, "  \"sweep\": [");
    for (i, run) in result.runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"slide\": {}, \"slide_ratio\": {:.4}, \"baseline_ms\": {:.4}, \
             \"incremental_ms\": {:.4}, \"speedup\": {:.4}, \"output_identical\": {}, \
             \"mean_delta_added\": {:.1}, \"mean_delta_retracted\": {:.1}, \"cache\": {}}}{}",
            run.slide,
            run.slide_ratio,
            run.baseline_ms,
            run.incremental_ms,
            run.speedup,
            run.output_identical,
            run.mean_delta_added,
            run.mean_delta_retracted,
            run.cache.to_json(),
            if i + 1 < result.runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    // Omitted (not fabricated as 0.0) when ratio 8 wasn't swept: the CI
    // gate then reports a missing headline key instead of a fake
    // regression.
    if let Some(r) = result.at_eighth() {
        let _ = writeln!(out, "  \"speedup_at_eighth\": {:.4},", r.speedup);
    }
    let _ = writeln!(out, "  \"output_identical_all\": {}", result.output_identical_all());
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_config() -> IncrementalConfig {
        IncrementalConfig {
            window_size: 160,
            ratios: vec![8, 1],
            windows: 4,
            cache_capacity: 16,
            ..IncrementalConfig::quick()
        }
    }

    #[test]
    fn sweep_outputs_are_identical_and_overlap_hits_cache() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        let result = run_incremental(&toy_config()).unwrap();
        assert_eq!(result.runs.len(), 2);
        assert!(result.output_identical_all(), "incremental output diverged");
        let eighth = result.at_eighth().expect("ratio 8 swept");
        assert!(
            eighth.cache.hits > 0,
            "7/8 overlap with burst-aligned slides must produce clean partitions"
        );
        assert!(
            eighth.cache.dirty_partition_ratio < 1.0,
            "some partitions must be clean, got {}",
            eighth.cache.dirty_partition_ratio
        );
        assert_eq!(eighth.mean_delta_added, eighth.slide as f64, "delta is one slide");
    }

    #[test]
    fn json_document_shape() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        let result = run_incremental(&toy_config()).unwrap();
        let json = incremental_json(&result);
        assert!(json.contains("\"sweep\": ["));
        assert!(json.contains("\"speedup_at_eighth\":"));
        assert!(json.contains("\"output_identical_all\": true"));
        assert!(json.contains("\"dirty_partition_ratio\":"));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
