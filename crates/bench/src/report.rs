//! Table rendering and CSV export for experiment results.

use crate::experiment::ExperimentResult;
use std::fmt::Write as _;

/// Which measure to tabulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Measure {
    /// Mean latency in milliseconds (Figures 7 and 9).
    LatencyMs,
    /// Mean accuracy in `[0, 1]` (Figures 8 and 10).
    Accuracy,
}

impl Measure {
    fn value(self, cell: &crate::experiment::Cell) -> f64 {
        match self {
            Measure::LatencyMs => cell.median_latency(),
            Measure::Accuracy => cell.mean_accuracy(),
        }
    }

    fn fmt(self, v: f64) -> String {
        match self {
            Measure::LatencyMs => format!("{v:.2}"),
            Measure::Accuracy => format!("{v:.3}"),
        }
    }
}

/// Renders an aligned text table, one row per window size, one column per
/// series — the same layout as the paper's figures read off their axes.
pub fn table(result: &ExperimentResult, measure: Measure, skip_r_for_accuracy: bool) -> String {
    let mut out = String::new();
    let series: Vec<usize> = (0..result.series.len())
        .filter(|&i| {
            !(skip_r_for_accuracy
                && measure == Measure::Accuracy
                && result.series[i] == crate::experiment::Series::R)
        })
        .collect();
    let _ = write!(out, "{:>12}", "window");
    for &si in &series {
        let _ = write!(out, " {:>12}", result.series[si].label());
    }
    let _ = writeln!(out);
    for (wi, &size) in result.window_sizes.iter().enumerate() {
        let _ = write!(out, "{size:>12}");
        for &si in &series {
            let _ = write!(out, " {:>12}", measure.fmt(measure.value(&result.cells[wi][si])));
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders CSV with both measures per cell.
pub fn csv(result: &ExperimentResult) -> String {
    let mut out = String::from("window,series,latency_ms,accuracy\n");
    for (wi, &size) in result.window_sizes.iter().enumerate() {
        for (si, series) in result.series.iter().enumerate() {
            let cell = &result.cells[wi][si];
            let _ = writeln!(
                out,
                "{},{},{:.4},{:.4}",
                size,
                series.label(),
                cell.median_latency(),
                cell.mean_accuracy()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Cell, ExperimentResult, Series};

    fn sample() -> ExperimentResult {
        ExperimentResult {
            window_sizes: vec![100, 200],
            series: vec![Series::R, Series::PrDep],
            cells: vec![
                vec![
                    Cell { latency_ms: vec![10.0], accuracy: vec![1.0] },
                    Cell { latency_ms: vec![5.0], accuracy: vec![1.0] },
                ],
                vec![
                    Cell { latency_ms: vec![20.0], accuracy: vec![1.0] },
                    Cell { latency_ms: vec![11.0], accuracy: vec![0.9] },
                ],
            ],
            duplication_ratio: 0.0,
            duplicated_predicates: vec![],
        }
    }

    #[test]
    fn table_layout() {
        let t = table(&sample(), Measure::LatencyMs, false);
        assert!(t.contains("PR_Dep"));
        assert!(t.contains("10.00"));
        assert!(t.lines().count() == 3);
    }

    #[test]
    fn accuracy_table_can_skip_r() {
        let t = table(&sample(), Measure::Accuracy, true);
        let header = t.lines().next().unwrap();
        assert!(!header.contains(" R"));
        assert!(header.contains("PR_Dep"));
    }

    #[test]
    fn csv_has_all_cells() {
        let c = csv(&sample());
        assert_eq!(c.lines().count(), 1 + 4);
        assert!(c.contains("200,PR_Dep,11.0000,0.9000"));
    }
}
