//! Observability overhead experiment: the pipelined [`StreamEngine`]
//! throughput workload run twice — once with sr-obs tracing disabled and no
//! registry bound (the hot-path default), once with the global tracer
//! enabled and every engine metric registered and scraped — to measure what
//! the instrumentation costs and to prove it never changes engine output.
//! Emits `BENCH_observability.json` via [`observability_json`]; its headline
//! `obs_overhead_fraction` is gated **from above** (≤ 0.05) by
//! `repro check`, unlike every other record's speedup gated from below.

use crate::throughput::{outputs_match, sequential_baseline};
use asp_core::{AspError, Symbols};
use sr_core::{
    AnalysisConfig, DependencyAnalysis, EngineConfig, EngineStats, ParallelReasoner,
    PlanPartitioner, ReasonerConfig, StreamEngine, UnknownPredicate,
};
use sr_stream::{paper_generator, GeneratorKind, Window};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::Arc;

/// Observability overhead experiment definition.
#[derive(Clone, Debug)]
pub struct ObservabilityConfig {
    /// ASP source of the program under test.
    pub program: String,
    /// Workload generator mode.
    pub generator: GeneratorKind,
    /// Items per window.
    pub window_size: usize,
    /// Number of windows streamed end to end per trial.
    pub windows: usize,
    /// Windows in flight (engine lanes) — fixed, not swept: the experiment
    /// varies instrumentation, not parallelism.
    pub in_flight: usize,
    /// Trials per side; each side reports its best (highest windows/s)
    /// trial so scheduler noise doesn't masquerade as tracing overhead.
    pub trials: usize,
    /// Workload seed.
    pub seed: u64,
}

impl ObservabilityConfig {
    /// The default measurement: 16 windows of 2,000 items, 2 in flight,
    /// best of 3 trials per side.
    pub fn paper(program: &str) -> Self {
        ObservabilityConfig {
            program: program.to_string(),
            generator: GeneratorKind::CorrelatedSparse,
            window_size: 2_000,
            windows: 16,
            in_flight: 2,
            trials: 3,
            seed: 2017,
        }
    }

    /// A smoke-test run for CI / `--quick`.
    pub fn quick(program: &str) -> Self {
        ObservabilityConfig { window_size: 400, windows: 8, ..Self::paper(program) }
    }
}

/// Result of the observability overhead experiment.
#[derive(Clone, Debug)]
pub struct ObservabilityResult {
    /// Items per window.
    pub window_size: usize,
    /// Windows streamed per trial.
    pub windows: usize,
    /// Windows in flight.
    pub in_flight: usize,
    /// Trials per side.
    pub trials: usize,
    /// Best trial with tracing disabled and no registry bound.
    pub off: EngineStats,
    /// Best trial with the tracer enabled and the engine registered into a
    /// scraped [`sr_obs::MetricsRegistry`].
    pub on: EngineStats,
    /// Spans drained from the global tracer across the instrumented trials.
    pub spans_recorded: u64,
    /// Distinct lifecycle stages observed among those spans.
    pub stages_covered: usize,
    /// Bytes of the final Prometheus exposition scrape.
    pub scrape_bytes: usize,
    /// Every obs-off trial rendered byte-identically to the sequential
    /// baseline.
    pub off_output_identical: bool,
    /// Every obs-on trial rendered byte-identically to the sequential
    /// baseline.
    pub on_output_identical: bool,
}

impl ObservabilityResult {
    /// All trials on both sides rendered byte-identically to the baseline —
    /// instrumentation never changed engine output.
    pub fn output_identical_all(&self) -> bool {
        self.off_output_identical && self.on_output_identical
    }

    /// Relative throughput cost of full instrumentation:
    /// `max(0, off_wps / on_wps - 1)` over each side's best trial. `0.0`
    /// when the instrumented side was at least as fast (noise floor).
    pub fn overhead_fraction(&self) -> f64 {
        if self.on.windows_per_sec <= 0.0 {
            return 0.0;
        }
        (self.off.windows_per_sec / self.on.windows_per_sec - 1.0).max(0.0)
    }
}

/// One engine pass over the pre-generated windows, returning the run's
/// statistics and whether its ordered output matched the baseline.
#[allow(clippy::too_many_arguments)]
fn engine_trial(
    syms: &Symbols,
    program: &asp_core::Program,
    analysis: &DependencyAnalysis,
    partitioner: &Arc<dyn sr_core::Partitioner>,
    config: &ObservabilityConfig,
    windows: &[Window],
    baseline_rendered: &[String],
    registry: Option<&sr_obs::MetricsRegistry>,
) -> Result<(EngineStats, bool), AspError> {
    let mut engine = StreamEngine::with_partitioned_lanes(
        syms,
        program,
        Some(&analysis.inpre),
        partitioner.clone(),
        ReasonerConfig::default(),
        EngineConfig {
            in_flight: config.in_flight,
            queue_depth: config.in_flight,
            ..Default::default()
        },
    )?;
    if let Some(registry) = registry {
        engine.register_metrics(registry);
    }
    for window in windows {
        engine.submit(window.clone())?;
    }
    let report = engine.finish();
    let identical = outputs_match(syms, &report.outputs, baseline_rendered);
    Ok((report.stats, identical))
}

/// Runs the experiment: a sequential reference pass for the identity oracle,
/// then `trials` engine passes with observability fully off and `trials`
/// with the tracer live and the registry scraped. The global tracer is
/// restored to disabled (and drained) before returning.
pub fn run_observability(config: &ObservabilityConfig) -> Result<ObservabilityResult, AspError> {
    let syms = Symbols::new();
    let program = asp_parser::parse_program(&syms, &config.program)?;
    let analysis = DependencyAnalysis::analyze(&syms, &program, None, &AnalysisConfig::default())?;
    let partitioner: Arc<dyn sr_core::Partitioner> =
        Arc::new(PlanPartitioner::new(analysis.plan.clone(), UnknownPredicate::Partition0));

    // The whole stream is pre-generated so every trial sees identical
    // windows, making byte-identity across instrumentation meaningful.
    let mut generator = paper_generator(config.generator, config.seed);
    let windows: Vec<Window> = (0..config.windows)
        .map(|i| Window::new(i as u64, generator.window(config.window_size)))
        .collect();

    // Identity oracle: the strictly sequential PR_Dep pass.
    let mut baseline_reasoner = ParallelReasoner::new(
        &syms,
        &program,
        Some(&analysis.inpre),
        partitioner.clone(),
        ReasonerConfig::default(),
    )?;
    let (_, baseline_rendered) = sequential_baseline(&syms, &mut baseline_reasoner, &windows)?;

    let trials = config.trials.max(1);
    let best = |a: EngineStats, b: EngineStats| {
        if b.windows_per_sec > a.windows_per_sec {
            b
        } else {
            a
        }
    };

    // Off side: make the default state explicit so a prior crash mid-run
    // can't leak an enabled tracer into the "uninstrumented" trials.
    sr_obs::tracer().set_enabled(false);
    sr_obs::tracer().drain();
    let mut off: Option<EngineStats> = None;
    let mut off_output_identical = true;
    for _ in 0..trials {
        let (stats, identical) = engine_trial(
            &syms,
            &program,
            &analysis,
            &partitioner,
            config,
            &windows,
            &baseline_rendered,
            None,
        )?;
        off_output_identical &= identical;
        off = Some(match off {
            Some(prev) => best(prev, stats),
            None => stats,
        });
    }

    // On side: global tracer live, every engine metric registered, and the
    // registry scraped after each trial exactly as the HTTP endpoint would.
    sr_obs::tracer().set_enabled(true);
    let mut on: Option<EngineStats> = None;
    let mut on_output_identical = true;
    let mut spans_recorded = 0u64;
    let mut stages = BTreeSet::new();
    let mut scrape_bytes = 0usize;
    for _ in 0..trials {
        let registry = sr_obs::MetricsRegistry::new();
        let (stats, identical) = engine_trial(
            &syms,
            &program,
            &analysis,
            &partitioner,
            config,
            &windows,
            &baseline_rendered,
            Some(&registry),
        )?;
        scrape_bytes = registry.render_prometheus().len();
        for span in sr_obs::tracer().drain() {
            spans_recorded += 1;
            stages.insert(span.stage.name());
        }
        on_output_identical &= identical;
        on = Some(match on {
            Some(prev) => best(prev, stats),
            None => stats,
        });
    }
    sr_obs::tracer().set_enabled(false);
    sr_obs::tracer().drain();

    Ok(ObservabilityResult {
        window_size: config.window_size,
        windows: config.windows,
        in_flight: config.in_flight,
        trials,
        off: off.expect("at least one off trial"),
        on: on.expect("at least one on trial"),
        spans_recorded,
        stages_covered: stages.len(),
        scrape_bytes,
        off_output_identical,
        on_output_identical,
    })
}

/// Renders the result as the `BENCH_observability.json` document.
pub fn observability_json(result: &ObservabilityResult) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"window_size\": {},", result.window_size);
    let _ = writeln!(out, "  \"windows\": {},", result.windows);
    let _ = writeln!(out, "  \"in_flight\": {},", result.in_flight);
    let _ = writeln!(out, "  \"trials\": {},", result.trials);
    let _ = writeln!(out, "  \"off\": {},", result.off.to_json());
    let _ = writeln!(out, "  \"on\": {},", result.on.to_json());
    let _ = writeln!(out, "  \"spans_recorded\": {},", result.spans_recorded);
    let _ = writeln!(out, "  \"stages_covered\": {},", result.stages_covered);
    let _ = writeln!(out, "  \"scrape_bytes\": {},", result.scrape_bytes);
    let _ = writeln!(out, "  \"off_output_identical\": {},", result.off_output_identical);
    let _ = writeln!(out, "  \"on_output_identical\": {},", result.on_output_identical);
    let _ = writeln!(out, "  \"output_identical_all\": {},", result.output_identical_all());
    let _ = writeln!(out, "  \"obs_overhead_fraction\": {:.4}", result.overhead_fraction());
    out.push_str("}\n");
    out
}

/// The experiment toggles the process-global tracer; every test that runs
/// it (here and in `gate`) must hold this lock so concurrent tests can't
/// disable each other's instrumented passes.
#[cfg(test)]
pub(crate) static TRACER_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::PROGRAM_P;

    fn tiny() -> ObservabilityConfig {
        ObservabilityConfig {
            window_size: 150,
            windows: 3,
            trials: 1,
            ..ObservabilityConfig::quick(PROGRAM_P)
        }
    }

    #[test]
    fn instrumentation_never_changes_engine_output() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        let _guard = TRACER_TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let result = run_observability(&tiny()).unwrap();
        assert!(result.off_output_identical, "obs-off trial diverged from baseline");
        assert!(result.on_output_identical, "obs-on trial diverged from baseline");
        assert!(result.output_identical_all());
        assert!(result.spans_recorded > 0, "instrumented trials recorded no spans");
        assert!(result.stages_covered >= 3, "expected window/stage coverage in the trace");
        assert!(result.scrape_bytes > 0, "registry scrape was empty");
        assert!(!sr_obs::tracer().is_enabled(), "tracer restored to disabled");
    }

    #[test]
    fn json_document_shape() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        let _guard = TRACER_TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let result = run_observability(&tiny()).unwrap();
        let json = observability_json(&result);
        assert!(json.contains("\"off\":"));
        assert!(json.contains("\"on\":"));
        assert!(json.contains("\"output_identical_all\": true"));
        assert!(json.contains("\"obs_overhead_fraction\":"));
        assert!(json.contains("\"spans_recorded\":"));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn overhead_fraction_clamps_at_zero() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        let _guard = TRACER_TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut result = run_observability(&tiny()).unwrap();
        result.off.windows_per_sec = 10.0;
        result.on.windows_per_sec = 20.0;
        assert_eq!(result.overhead_fraction(), 0.0, "faster-when-on clamps to zero");
        result.on.windows_per_sec = 8.0;
        assert!((result.overhead_fraction() - 0.25).abs() < 1e-12);
    }
}
