//! Experiment grid runner used by both the `repro` binary and the Criterion
//! benches: builds the reasoners once, streams synthetic windows through
//! them, and collects latency/accuracy per (window size, series) cell.

use asp_core::{AspError, Program, Symbols};
use asp_solver::SolverConfig;
use sr_core::{
    reasoner_pool, window_accuracy, AnalysisConfig, DependencyAnalysis, ParallelMode,
    ParallelReasoner, PlanPartitioner, Projection, RandomPartitioner, ReasonerConfig,
    ReasonerOutput, SingleReasoner, UnknownPredicate,
};
use sr_stream::{paper_generator, GeneratorKind, Window};
use std::sync::Arc;

/// One series of the paper's plots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Series {
    /// The single reasoner.
    R,
    /// Dependency-partitioned parallel reasoner.
    PrDep,
    /// Random k-way partitioned parallel reasoner.
    PrRan(usize),
}

impl Series {
    /// The label used in the paper's legends.
    pub fn label(&self) -> String {
        match self {
            Series::R => "R".to_string(),
            Series::PrDep => "PR_Dep".to_string(),
            Series::PrRan(k) => format!("PR_Ran_k{k}"),
        }
    }
}

/// Experiment definition.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// ASP source of the program under test.
    pub program: String,
    /// Workload generator mode.
    pub generator: GeneratorKind,
    /// Window sizes (items) to sweep.
    pub window_sizes: Vec<usize>,
    /// Measured repetitions per cell.
    pub reps: usize,
    /// Unmeasured warm-up windows per cell.
    pub warmup: usize,
    /// Workload seed.
    pub seed: u64,
    /// `k` values for the random baseline.
    pub random_ks: Vec<usize>,
    /// PR scheduling mode.
    pub mode: ParallelMode,
    /// Accuracy projection: predicate names to keep (the paper's reasoner
    /// returns *solutions*, i.e. detected events); `None` keeps every
    /// derived (non-input) atom.
    pub projection_predicates: Option<Vec<String>>,
}

impl ExperimentConfig {
    /// The paper's grid: windows 5k..40k step 5k, `k ∈ {2,3,4,5}`.
    pub fn paper(program: &str, generator: GeneratorKind) -> Self {
        ExperimentConfig {
            program: program.to_string(),
            generator,
            window_sizes: (1..=8).map(|i| i * 5_000).collect(),
            reps: 5,
            warmup: 2,
            seed: 2017,
            random_ks: vec![2, 3, 4, 5],
            mode: ParallelMode::Threads,
            projection_predicates: Some(
                ["traffic_jam", "car_fire", "give_notification"].map(str::to_string).to_vec(),
            ),
        }
    }

    /// A smoke-test grid for CI / `--quick`.
    pub fn quick(program: &str, generator: GeneratorKind) -> Self {
        ExperimentConfig {
            window_sizes: vec![2_000, 5_000],
            reps: 2,
            warmup: 1,
            ..Self::paper(program, generator)
        }
    }
}

/// One measured cell.
#[derive(Clone, Debug, Default)]
pub struct Cell {
    /// Latency samples (ms).
    pub latency_ms: Vec<f64>,
    /// Accuracy samples vs `R` on the same window.
    pub accuracy: Vec<f64>,
}

impl Cell {
    /// Mean latency in ms.
    pub fn mean_latency(&self) -> f64 {
        mean(&self.latency_ms)
    }

    /// Median latency in ms — robust against scheduler noise on small
    /// shared machines, and what the tables report.
    pub fn median_latency(&self) -> f64 {
        median(&self.latency_ms)
    }

    /// Mean accuracy.
    pub fn mean_accuracy(&self) -> f64 {
        mean(&self.accuracy)
    }
}

fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Result grid: `cells[size_idx][series_idx]`.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// The sizes swept.
    pub window_sizes: Vec<usize>,
    /// Series order.
    pub series: Vec<Series>,
    /// The cells.
    pub cells: Vec<Vec<Cell>>,
    /// Fraction of window items duplicated by the dependency plan (0 when no
    /// predicate is duplicated) — the paper reports ≈25% for P'.
    pub duplication_ratio: f64,
    /// Duplicated predicate names from the plan.
    pub duplicated_predicates: Vec<String>,
}

impl ExperimentResult {
    /// The cell for a series at a window size.
    pub fn cell(&self, size: usize, series: &Series) -> &Cell {
        let si = self.window_sizes.iter().position(|&s| s == size).expect("size in grid");
        let ci = self.series.iter().position(|s| s == series).expect("series in grid");
        &self.cells[si][ci]
    }
}

/// A fully built experiment bench: reasoners constructed once (design time),
/// windows streamed through (run time).
pub struct ExperimentBench {
    /// Shared symbol store.
    pub syms: Symbols,
    /// Parsed program.
    pub program: Program,
    /// The design-time analysis (plan, graphs).
    pub analysis: DependencyAnalysis,
    /// Reference reasoner R.
    pub r: SingleReasoner,
    /// PR with the dependency plan.
    pub pr_dep: ParallelReasoner,
    /// PR with random partitioning per k.
    pub pr_ran: Vec<(usize, ParallelReasoner)>,
    projection: Projection,
}

impl ExperimentBench {
    /// Builds all reasoners for `config`.
    pub fn build(config: &ExperimentConfig) -> Result<Self, AspError> {
        let syms = Symbols::new();
        let program = asp_parser::parse_program(&syms, &config.program)?;
        let analysis =
            DependencyAnalysis::analyze(&syms, &program, None, &AnalysisConfig::default())?;
        let reasoner_cfg = ReasonerConfig { mode: config.mode, ..Default::default() };
        let r = SingleReasoner::new(&syms, &program, None, SolverConfig::default())?;
        let dep_partitioner: Arc<dyn sr_core::Partitioner> =
            Arc::new(PlanPartitioner::new(analysis.plan.clone(), UnknownPredicate::Partition0));
        // Threads mode: PR_Dep and every PR_Ran_k share one warm worker
        // pool (the `Arc` clone in `build_pr`), sized for the widest
        // partitioning in the sweep; Sequential mode needs no pool. (Not
        // `PoolRegistry`: each bench has its own `Symbols`, so pools must
        // not outlive the bench, and within one bench the `Arc` already is
        // the sharing.)
        let pool = match config.mode {
            ParallelMode::Threads => {
                let workers = config
                    .random_ks
                    .iter()
                    .copied()
                    .chain([analysis.plan.communities])
                    .max()
                    .unwrap_or(1);
                Some(Arc::new(reasoner_pool(
                    &syms,
                    &program,
                    Some(&analysis.inpre),
                    &SolverConfig::default(),
                    workers,
                    reasoner_cfg.cost_planning,
                )?))
            }
            ParallelMode::Sequential => None,
        };
        let build_pr = |partitioner: Arc<dyn sr_core::Partitioner>| match &pool {
            Some(pool) => Ok(ParallelReasoner::with_pool(
                &syms,
                partitioner,
                reasoner_cfg.clone(),
                Arc::clone(pool),
            )),
            None => ParallelReasoner::new(
                &syms,
                &program,
                Some(&analysis.inpre),
                partitioner,
                reasoner_cfg.clone(),
            ),
        };
        let pr_dep = build_pr(dep_partitioner)?;
        let mut pr_ran = Vec::new();
        for &k in &config.random_ks {
            pr_ran
                .push((k, build_pr(Arc::new(RandomPartitioner::new(k, config.seed ^ k as u64)))?));
        }
        let projection = match &config.projection_predicates {
            None => Projection::derived(&analysis.inpre),
            Some(names) => {
                let keep: asp_core::FastSet<asp_core::Predicate> = program
                    .predicates()
                    .into_iter()
                    .filter(|p| {
                        let name = syms.resolve(p.name);
                        names.iter().any(|n| n.as_str() == &*name)
                    })
                    .collect();
                Projection::Keep(keep)
            }
        };
        Ok(ExperimentBench { syms, program, analysis, r, pr_dep, pr_ran, projection })
    }

    /// Accuracy of `candidate` against `reference` under the experiment's
    /// derived-atom projection.
    pub fn accuracy(&self, reference: &ReasonerOutput, candidate: &ReasonerOutput) -> f64 {
        window_accuracy(&self.syms, &reference.answers, &candidate.answers, &self.projection)
    }
}

/// Runs the full grid.
pub fn run(config: &ExperimentConfig) -> Result<ExperimentResult, AspError> {
    let mut bench = ExperimentBench::build(config)?;
    let mut series = vec![Series::R, Series::PrDep];
    series.extend(config.random_ks.iter().map(|&k| Series::PrRan(k)));

    let duplicated: Vec<String> =
        bench.analysis.plan.duplicated().iter().map(|s| s.to_string()).collect();

    let mut cells: Vec<Vec<Cell>> = Vec::with_capacity(config.window_sizes.len());
    let mut dup_ratio_acc = Vec::new();
    for (size_idx, &size) in config.window_sizes.iter().enumerate() {
        let mut generator = paper_generator(config.generator, config.seed + size as u64);
        let mut row: Vec<Cell> = vec![Cell::default(); series.len()];
        for rep in 0..(config.warmup + config.reps) {
            let window = Window::new((size_idx * 1000 + rep) as u64, generator.window(size));
            let measured = rep >= config.warmup;

            let out_r = bench.r.process(&window)?;
            if measured {
                row[0].latency_ms.push(ms(&out_r));
                row[0].accuracy.push(1.0);
            }

            let out_dep = bench.pr_dep.process(&window)?;
            if measured {
                row[1].latency_ms.push(ms(&out_dep));
                row[1].accuracy.push(bench.accuracy(&out_r, &out_dep));
                let total: usize = out_dep.partition_sizes.iter().sum();
                dup_ratio_acc.push((total as f64 - window.len() as f64) / window.len() as f64);
            }

            for ki in 0..bench.pr_ran.len() {
                let out = bench.pr_ran[ki].1.process(&window)?;
                if measured {
                    row[2 + ki].latency_ms.push(ms(&out));
                    row[2 + ki].accuracy.push(bench.accuracy(&out_r, &out));
                }
            }
        }
        cells.push(row);
    }

    Ok(ExperimentResult {
        window_sizes: config.window_sizes.clone(),
        series,
        cells,
        duplication_ratio: mean(&dup_ratio_acc),
        duplicated_predicates: duplicated,
    })
}

fn ms(out: &ReasonerOutput) -> f64 {
    out.timing.total.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{program_p_prime, PROGRAM_P};

    #[test]
    fn quick_grid_runs_and_prdep_is_exact() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        let mut cfg = ExperimentConfig::quick(PROGRAM_P, GeneratorKind::Correlated);
        cfg.window_sizes = vec![500];
        cfg.reps = 1;
        cfg.random_ks = vec![2];
        let result = run(&cfg).unwrap();
        assert_eq!(result.series.len(), 3);
        let dep = result.cell(500, &Series::PrDep);
        assert_eq!(dep.mean_accuracy(), 1.0, "dependency partitioning must stay exact");
        assert!(dep.mean_latency() > 0.0);
        assert!(result.duplicated_predicates.is_empty());
    }

    #[test]
    fn p_prime_reports_duplication() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        let mut cfg = ExperimentConfig::quick(&program_p_prime(), GeneratorKind::Correlated);
        cfg.window_sizes = vec![600];
        cfg.reps = 1;
        cfg.random_ks = vec![];
        let result = run(&cfg).unwrap();
        assert_eq!(result.duplicated_predicates, vec!["car_number".to_string()]);
        // car_number is 1 of 6 uniform predicates: ≈ 1/6 ≈ 17% of instances
        // duplicated in expectation (the paper reports 25% on its data).
        assert!(result.duplication_ratio > 0.05, "{}", result.duplication_ratio);
        assert!(result.duplication_ratio < 0.35, "{}", result.duplication_ratio);
    }

    #[test]
    fn series_labels_match_paper_legends() {
        assert_eq!(Series::R.label(), "R");
        assert_eq!(Series::PrDep.label(), "PR_Dep");
        assert_eq!(Series::PrRan(3).label(), "PR_Ran_k3");
    }
}
