//! The bench regression gate: validates the machine-written `BENCH_*.json`
//! records so CI can *fail* on a correctness or performance regression
//! instead of merely uploading artifacts. Exposed to CI as
//! `repro check <file>...`.
//!
//! Two invariants are enforced per record:
//!
//! * **identity** — `output_identical_all` (or, in records without the
//!   aggregate, every `output_identical` / `ordered_output_identical`
//!   flag) must be `true`: an optimization that changes answers is a bug,
//!   whatever its speedup;
//! * **headline speedup** — the record's headline metric
//!   (`speedup_at_eighth` for the incremental and delta-grounding sweeps,
//!   `best_speedup_windows_per_sec` for the throughput record,
//!   `shared_work_speedup_at_dup1` for the multi-tenant sweep,
//!   `planner_speedup` for the join-planning sweep) must be
//!   ≥ 1.0. Per-ratio entries may legitimately dip below 1.0 (tumbling
//!   windows have nothing to reuse; a zero-duplication cell pays the
//!   scheduler overhead for nothing), so only the headline gates. The
//!   observability record is the one exception: its headline
//!   `obs_overhead_fraction` measures a *cost*, so it gates from above —
//!   the fraction must stay ≤ [`MAX_OBS_OVERHEAD`]. The chaos record also
//!   gates from above: its `degraded_window_fraction` must stay ≤ the
//!   record's own `degraded_fraction_ceiling`, and its identity flags are
//!   `hooks_disabled_identical` / `clean_windows_identical` /
//!   `emission_ordered`. The static-analysis record gates from above too:
//!   its headline `bound_tightness` (peak observed state cells / predicted
//!   bound) must stay ≤ [`MAX_BOUND_TIGHTNESS`] — the bound is a
//!   *soundness* claim, so an observed state above it is a correctness
//!   bug, not a performance regression — with identity flags
//!   `output_identical_all` / `all_within_bound`.
//!
//! The records are produced by this workspace's own hand-rolled writers
//! (the workspace has no JSON serializer dependency), so the checker is a
//! matching hand-rolled scanner over the known `"key": value` shape rather
//! than a general JSON parser.

/// Ceiling on the observability record's headline overhead fraction: full
/// instrumentation (tracing + live registry) may cost at most 5% throughput.
pub const MAX_OBS_OVERHEAD: f64 = 0.05;

/// Ceiling on the analysis record's headline `bound_tightness`: observed
/// delta-grounder state may never exceed the static admission bound.
pub const MAX_BOUND_TIGHTNESS: f64 = 1.0;

/// One record's gate outcome: the headline numbers worth echoing into the
/// CI log.
#[derive(Clone, Debug, PartialEq)]
pub struct GateSummary {
    /// Which headline key was found (a speedup, or `obs_overhead_fraction`
    /// for the observability record).
    pub speedup_key: &'static str,
    /// Its value.
    pub speedup: f64,
    /// Identity flags inspected (aggregate counts as one).
    pub identity_flags: usize,
}

/// Every `value` token following `"key": ` in `json`, trimmed of trailing
/// `,`/`}`/`]`.
fn values_of<'j>(json: &'j str, key: &str) -> Vec<&'j str> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let token = rest
            .trim_start()
            .split(|c: char| c == ',' || c == '}' || c == ']' || c.is_whitespace())
            .next()
            .unwrap_or("");
        out.push(token);
    }
    out
}

/// Checks the chaos record: its identity flags are
/// `hooks_disabled_identical` (inert hooks byte-identical to the oracle)
/// and `clean_windows_identical` (no silent corruption under faults), plus
/// `emission_ordered`; its headline `degraded_window_fraction` is a cost
/// gated from above by the record's own `degraded_fraction_ceiling`.
fn check_chaos_record(json: &str) -> Result<GateSummary, Vec<String>> {
    let mut violations = Vec::new();
    let mut identity_flags = 0;
    for key in ["hooks_disabled_identical", "clean_windows_identical", "emission_ordered"] {
        match values_of(json, key).first().copied() {
            Some("true") => identity_flags += 1,
            Some("false") => violations.push(format!("{key} is false: output diverged")),
            Some(other) => violations.push(format!("{key} has a non-boolean value {other:?}")),
            None => violations.push(format!("chaos record is missing {key}")),
        }
    }
    let fraction = match values_of(json, "degraded_window_fraction").first().copied() {
        Some(v) => v.parse::<f64>().map_err(|_| {
            violations.push(format!("degraded_window_fraction has a non-numeric value {v:?}"))
        }),
        None => unreachable!("caller dispatched on the key's presence"),
    };
    let ceiling = match values_of(json, "degraded_fraction_ceiling").first().copied() {
        Some(v) => v.parse::<f64>().map_err(|_| {
            violations.push(format!("degraded_fraction_ceiling has a non-numeric value {v:?}"))
        }),
        None => {
            violations.push("chaos record is missing degraded_fraction_ceiling".to_string());
            Err(())
        }
    };
    if let (Ok(fraction), Ok(ceiling)) = (fraction, ceiling) {
        if fraction > ceiling {
            violations.push(format!("degraded_window_fraction exceeded {ceiling}: {fraction:.4}"));
        }
    }
    match (violations.is_empty(), fraction) {
        (true, Ok(fraction)) => Ok(GateSummary {
            speedup_key: "degraded_window_fraction",
            speedup: fraction,
            identity_flags,
        }),
        _ => Err(violations),
    }
}

/// Checks the static-analysis record: identity flags are
/// `output_identical_all` (a bound that only holds because the reasoner
/// dropped work would be vacuous) and `all_within_bound` (every partition
/// respected its bound component-wise); the headline `bound_tightness` is
/// gated from above by [`MAX_BOUND_TIGHTNESS`] — a violation means the
/// static bound under-predicted real state, a soundness bug.
fn check_analysis_record(json: &str) -> Result<GateSummary, Vec<String>> {
    let mut violations = Vec::new();
    let mut identity_flags = 0;
    for key in ["output_identical_all", "all_within_bound"] {
        match values_of(json, key).first().copied() {
            Some("true") => identity_flags += 1,
            Some("false") => violations.push(format!("{key} is false")),
            Some(other) => violations.push(format!("{key} has a non-boolean value {other:?}")),
            None => violations.push(format!("analysis record is missing {key}")),
        }
    }
    // Per-run flags are scanned too: a false sweep entry must fail even if
    // the aggregate ever went stale in the writer.
    for value in values_of(json, "within_bound") {
        if value == "false" {
            violations
                .push("within_bound is false: observed state exceeded the static bound".into());
        }
    }
    let tightness = match values_of(json, "bound_tightness").first().copied() {
        Some(v) => v
            .parse::<f64>()
            .map_err(|_| violations.push(format!("bound_tightness has a non-numeric value {v:?}"))),
        None => unreachable!("caller dispatched on the key's presence"),
    };
    if let Ok(t) = tightness {
        if t > MAX_BOUND_TIGHTNESS {
            violations.push(format!(
                "bound_tightness exceeded {MAX_BOUND_TIGHTNESS}: {t:.4} — observed state above \
                 the static bound is a soundness bug"
            ));
        }
    }
    match (violations.is_empty(), tightness) {
        (true, Ok(tightness)) => {
            Ok(GateSummary { speedup_key: "bound_tightness", speedup: tightness, identity_flags })
        }
        _ => Err(violations),
    }
}

/// True when the record's headline gate depends on multi-core parallelism:
/// the pipelined-throughput record's `best_speedup_windows_per_sec` ≥ 1.0
/// gate measures pipelining gain over a sequential baseline, which a
/// 1-core runner cannot deliver — there the gate would fail spuriously
/// instead of detecting a regression, so `repro check` marks it
/// `skipped_single_core` rather than passing (or failing) vacuously.
pub fn parallelism_dependent(json: &str) -> bool {
    !values_of(json, "best_speedup_windows_per_sec").is_empty()
}

/// Checks one bench record. `Ok` carries the headline summary; `Err`
/// carries every violation found (empty never).
pub fn check_record(json: &str) -> Result<GateSummary, Vec<String>> {
    // The chaos record has its own flag names and a from-above headline;
    // dispatch on its headline key before the common scan.
    if !values_of(json, "degraded_window_fraction").is_empty() {
        return check_chaos_record(json);
    }
    // Likewise the static-analysis record: its headline is a from-above
    // soundness ratio, not a speedup.
    if !values_of(json, "bound_tightness").is_empty() {
        return check_analysis_record(json);
    }
    let mut violations = Vec::new();

    // Identity: the aggregate when present, every per-run flag otherwise.
    let aggregate = values_of(json, "output_identical_all");
    let flags: Vec<(&str, &str)> = if aggregate.is_empty() {
        let mut per_run: Vec<(&str, &str)> = Vec::new();
        for key in ["output_identical", "ordered_output_identical", "engine_output_identical"] {
            per_run.extend(values_of(json, key).into_iter().map(|v| (key, v)));
        }
        per_run
    } else {
        aggregate.into_iter().map(|v| ("output_identical_all", v)).collect()
    };
    if flags.is_empty() {
        violations.push("no output-identity flag found in the record".to_string());
    }
    for (key, value) in &flags {
        match *value {
            "true" => {}
            "false" => violations.push(format!("{key} is false: output diverged")),
            other => violations.push(format!("{key} has a non-boolean value {other:?}")),
        }
    }

    // Headline speedup: the first headline key the record carries.
    let mut speedup: Option<(&'static str, f64)> = None;
    for key in [
        "speedup_at_eighth",
        "best_speedup_windows_per_sec",
        "shared_work_speedup_at_dup1",
        "planner_speedup",
    ] {
        if let Some(v) = values_of(json, key).first() {
            match v.parse::<f64>() {
                Ok(x) => speedup = Some((key, x)),
                Err(_) => violations.push(format!("{key} has a non-numeric value {v:?}")),
            }
            break;
        }
    }
    // The observability record gates its headline from above instead: the
    // overhead fraction is a cost, and the budget is MAX_OBS_OVERHEAD.
    let mut overhead_gated = false;
    if speedup.is_none() {
        if let Some(v) = values_of(json, "obs_overhead_fraction").first() {
            overhead_gated = true;
            match v.parse::<f64>() {
                Ok(x) => {
                    if x > MAX_OBS_OVERHEAD {
                        violations.push(format!(
                            "obs_overhead_fraction exceeded {MAX_OBS_OVERHEAD}: {x:.4}"
                        ));
                    }
                    speedup = Some(("obs_overhead_fraction", x));
                }
                Err(_) => {
                    violations.push(format!("obs_overhead_fraction has a non-numeric value {v:?}"))
                }
            }
        }
    }
    match speedup {
        Some((key, x)) if x < 1.0 && !overhead_gated => {
            violations.push(format!("{key} regressed below 1.0: {x:.4}"));
        }
        None if violations.is_empty() => {
            violations.push("no headline speedup key found in the record".to_string());
        }
        _ => {}
    }

    match (violations.is_empty(), speedup) {
        (true, Some((speedup_key, speedup))) => {
            Ok(GateSummary { speedup_key, speedup, identity_flags: flags.len() })
        }
        _ => Err(violations),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_SWEEP: &str = r#"{
      "sweep": [
        {"slide": 40, "speedup": 2.31, "output_identical": true},
        {"slide": 320, "speedup": 0.79, "output_identical": true}
      ],
      "speedup_at_eighth": 2.3122,
      "output_identical_all": true
    }"#;

    const GOOD_THROUGHPUT: &str = r#"{
      "runs": [
        {"in_flight": 1, "ordered_output_identical": true, "stats": {}},
        {"in_flight": 2, "ordered_output_identical": true, "stats": {}}
      ],
      "best_speedup_windows_per_sec": 1.0030
    }"#;

    #[test]
    fn good_records_pass() {
        let sweep = check_record(GOOD_SWEEP).unwrap();
        assert_eq!(sweep.speedup_key, "speedup_at_eighth");
        assert!((sweep.speedup - 2.3122).abs() < 1e-9);
        assert_eq!(sweep.identity_flags, 1, "aggregate flag wins");

        let tp = check_record(GOOD_THROUGHPUT).unwrap();
        assert_eq!(tp.speedup_key, "best_speedup_windows_per_sec");
        assert_eq!(tp.identity_flags, 2, "per-run flags checked without an aggregate");
    }

    #[test]
    fn per_ratio_dip_below_one_is_allowed() {
        // GOOD_SWEEP has a 0.79x tumbling entry; only the headline gates.
        assert!(check_record(GOOD_SWEEP).is_ok());
    }

    #[test]
    fn diverged_output_fails() {
        let bad =
            GOOD_SWEEP.replace("\"output_identical_all\": true", "\"output_identical_all\": false");
        let violations = check_record(&bad).unwrap_err();
        assert!(violations.iter().any(|v| v.contains("output diverged")), "{violations:?}");
    }

    #[test]
    fn one_diverged_run_fails_without_aggregate() {
        let bad = GOOD_THROUGHPUT.replace(
            "\"in_flight\": 2, \"ordered_output_identical\": true",
            "\"in_flight\": 2, \"ordered_output_identical\": false",
        );
        let violations = check_record(&bad).unwrap_err();
        assert_eq!(violations.len(), 1, "{violations:?}");
    }

    #[test]
    fn regressed_headline_speedup_fails() {
        let bad =
            GOOD_SWEEP.replace("\"speedup_at_eighth\": 2.3122", "\"speedup_at_eighth\": 0.9421");
        let violations = check_record(&bad).unwrap_err();
        assert!(
            violations.iter().any(|v| v.contains("regressed below 1.0: 0.9421")),
            "{violations:?}"
        );
    }

    const GOOD_OBSERVABILITY: &str = r#"{
      "off": {},
      "on": {},
      "output_identical_all": true,
      "obs_overhead_fraction": 0.0123
    }"#;

    #[test]
    fn observability_headline_gates_from_above() {
        let obs = check_record(GOOD_OBSERVABILITY).unwrap();
        assert_eq!(obs.speedup_key, "obs_overhead_fraction");
        assert!((obs.speedup - 0.0123).abs() < 1e-9);

        // A zero fraction is the best possible outcome — it must not trip
        // the from-below speedup gate the other records use.
        let zero = GOOD_OBSERVABILITY.replace("0.0123", "0.0000");
        assert!(check_record(&zero).is_ok());

        let bad = GOOD_OBSERVABILITY.replace("0.0123", "0.0712");
        let violations = check_record(&bad).unwrap_err();
        assert!(violations.iter().any(|v| v.contains("exceeded 0.05: 0.0712")), "{violations:?}");

        let diverged = GOOD_OBSERVABILITY
            .replace("\"output_identical_all\": true", "\"output_identical_all\": false");
        let violations = check_record(&diverged).unwrap_err();
        assert!(violations.iter().any(|v| v.contains("output diverged")), "{violations:?}");
    }

    const GOOD_CHAOS: &str = r#"{
      "faulted": {},
      "degraded_windows": 4,
      "emission_ordered": true,
      "degraded_window_fraction": 0.0833,
      "recovery_windows_p95": 1.0,
      "degraded_fraction_ceiling": 0.5,
      "hooks_disabled_identical": true,
      "clean_windows_identical": true
    }"#;

    #[test]
    fn chaos_headline_gates_from_above_its_own_ceiling() {
        let chaos = check_record(GOOD_CHAOS).unwrap();
        assert_eq!(chaos.speedup_key, "degraded_window_fraction");
        assert!((chaos.speedup - 0.0833).abs() < 1e-9);
        assert_eq!(chaos.identity_flags, 3);

        // A zero fraction (no faults fired) must not trip the from-below
        // speedup gate the other records use.
        let zero = GOOD_CHAOS.replace("0.0833", "0.0000");
        assert!(check_record(&zero).is_ok());

        let bad = GOOD_CHAOS.replace("0.0833", "0.7812");
        let violations = check_record(&bad).unwrap_err();
        assert!(violations.iter().any(|v| v.contains("exceeded 0.5: 0.7812")), "{violations:?}");

        let silent = GOOD_CHAOS
            .replace("\"clean_windows_identical\": true", "\"clean_windows_identical\": false");
        let violations = check_record(&silent).unwrap_err();
        assert!(violations.iter().any(|v| v.contains("clean_windows_identical")), "{violations:?}");

        let unordered =
            GOOD_CHAOS.replace("\"emission_ordered\": true", "\"emission_ordered\": false");
        assert!(check_record(&unordered).is_err());

        let no_ceiling = GOOD_CHAOS.replace("\"degraded_fraction_ceiling\": 0.5,", "");
        let violations = check_record(&no_ceiling).unwrap_err();
        assert!(
            violations.iter().any(|v| v.contains("missing degraded_fraction_ceiling")),
            "{violations:?}"
        );
    }

    const GOOD_ANALYSIS: &str = r#"{
      "sweep": [
        {"slide": 40, "predicted_cells": 9000, "observed_cells": 1200, "tightness": 0.133333, "within_bound": true, "output_identical": true},
        {"slide": 320, "predicted_cells": 9000, "observed_cells": 2400, "tightness": 0.266667, "within_bound": true, "output_identical": true}
      ],
      "bound_tightness": 0.266667,
      "all_within_bound": true,
      "output_identical_all": true
    }"#;

    #[test]
    fn analysis_headline_gates_from_above() {
        let analysis = check_record(GOOD_ANALYSIS).unwrap();
        assert_eq!(analysis.speedup_key, "bound_tightness");
        assert!((analysis.speedup - 0.266667).abs() < 1e-9);
        assert_eq!(analysis.identity_flags, 2);

        // Tightness well below 1.0 is a *loose* bound, not a regression —
        // it must not trip the from-below speedup gate other records use.
        let loose = GOOD_ANALYSIS.replace("0.266667", "0.000100");
        assert!(check_record(&loose).is_ok());

        let bad =
            GOOD_ANALYSIS.replace("\"bound_tightness\": 0.266667", "\"bound_tightness\": 1.3100");
        let violations = check_record(&bad).unwrap_err();
        assert!(violations.iter().any(|v| v.contains("soundness bug")), "{violations:?}");

        let violated =
            GOOD_ANALYSIS.replace("\"all_within_bound\": true", "\"all_within_bound\": false");
        assert!(check_record(&violated).is_err());

        // A false per-run flag fails even with a (stale) true aggregate.
        let stale = GOOD_ANALYSIS.replace(
            "\"tightness\": 0.266667, \"within_bound\": true",
            "\"tightness\": 0.266667, \"within_bound\": false",
        );
        let violations = check_record(&stale).unwrap_err();
        assert!(violations.iter().any(|v| v.contains("observed state exceeded")), "{violations:?}");

        let diverged = GOOD_ANALYSIS
            .replace("\"output_identical_all\": true", "\"output_identical_all\": false");
        assert!(check_record(&diverged).is_err());
    }

    #[test]
    fn only_the_throughput_record_is_parallelism_dependent() {
        assert!(parallelism_dependent(GOOD_THROUGHPUT));
        for record in [GOOD_SWEEP, GOOD_OBSERVABILITY, GOOD_CHAOS, GOOD_ANALYSIS] {
            assert!(!parallelism_dependent(record));
        }
    }

    #[test]
    fn missing_keys_fail() {
        let violations = check_record("{}").unwrap_err();
        assert!(violations.iter().any(|v| v.contains("no output-identity flag")), "{violations:?}");
        let no_speedup = check_record(r#"{"output_identical_all": true}"#).unwrap_err();
        assert!(no_speedup.iter().any(|v| v.contains("no headline speedup")), "{no_speedup:?}");
    }

    #[test]
    fn real_writers_satisfy_the_gate() {
        // The actual record writers (toy scale) must produce gate-clean
        // documents — the shape contract between producer and checker.
        // Held for the whole test: the fault plan is process-global, and a
        // concurrently running chaos test would otherwise inject faults
        // into the fault-free toy runs below.
        let _fault_guard = sr_core::fault::test_guard();
        let inc = crate::incremental::run_incremental(&crate::IncrementalConfig {
            window_size: 160,
            ratios: vec![8],
            windows: 3,
            cache_capacity: 16,
            ..crate::IncrementalConfig::quick()
        })
        .unwrap();
        check_record(&crate::incremental_json(&inc)).unwrap();

        let dg = crate::delta_grounding::run_delta_grounding(&crate::DeltaGroundingConfig {
            window_size: 160,
            ratios: vec![8],
            windows: 3,
            cache_capacity: 16,
            ..crate::DeltaGroundingConfig::quick()
        })
        .unwrap();
        check_record(&crate::delta_grounding_json(&dg)).unwrap();

        // The throughput writer's *shape* contract (CI gates this record
        // first): key renames must fail here, not in a red CI step. The
        // toy-scale speedup value itself is hardware-dependent, so a
        // below-1.0 headline is the one violation tolerated.
        let tp = crate::throughput::run_throughput(&crate::ThroughputConfig {
            window_size: 100,
            windows: 2,
            in_flight: vec![1],
            ..crate::ThroughputConfig::quick(crate::PROGRAM_P)
        })
        .unwrap();
        match check_record(&crate::throughput_json(&tp)) {
            Ok(summary) => assert_eq!(summary.speedup_key, "best_speedup_windows_per_sec"),
            Err(violations) => assert!(
                violations.iter().all(|v| v.contains("regressed below 1.0")),
                "shape violation: {violations:?}"
            ),
        }

        // Join planning: the skewed wide-body workload gives the cost
        // planner a decisive edge even at toy scale, and the headline is
        // the only gate-relevant speedup key the record carries.
        let jp = crate::join_planning::run_join_planning(&crate::JoinPlanningConfig {
            sizes: vec![160],
            windows: 3,
            cache_capacity: 8,
            ..crate::JoinPlanningConfig::quick()
        })
        .unwrap();
        match check_record(&crate::join_planning_json(&jp)) {
            Ok(summary) => assert_eq!(summary.speedup_key, "planner_speedup"),
            Err(violations) => assert!(
                violations.iter().all(|v| v.contains("regressed below 1.0")),
                "shape violation: {violations:?}"
            ),
        }

        // Multi-tenant: at full duplication the shared engine runs each
        // window once instead of N times, so even a toy-scale headline
        // comfortably clears 1.0 — gated strictly.
        let mt = crate::multi_tenant::run_multi_tenant(&crate::MultiTenantConfig {
            programs: vec![crate::PROGRAM_P.to_string()],
            window_size: 120,
            slide: 30,
            windows: 3,
            tenant_counts: vec![4],
            dup_ratios: vec![1.0],
            cache_capacity: 32,
            ..crate::MultiTenantConfig::quick()
        })
        .unwrap();
        let summary = check_record(&crate::multi_tenant_json(&mt)).unwrap();
        assert_eq!(summary.speedup_key, "shared_work_speedup_at_dup1");
        assert!(summary.speedup >= 1.0);

        // Observability: identity must hold even at toy scale; the measured
        // overhead fraction on a 2-window run is pure scheduler noise, so an
        // exceeded-budget headline is the one violation tolerated.
        let obs = {
            let _guard = crate::observability::TRACER_TEST_LOCK
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            crate::observability::run_observability(&crate::ObservabilityConfig {
                window_size: 120,
                windows: 2,
                trials: 1,
                ..crate::ObservabilityConfig::quick(crate::PROGRAM_P)
            })
            .unwrap()
        };
        match check_record(&crate::observability_json(&obs)) {
            Ok(summary) => assert_eq!(summary.speedup_key, "obs_overhead_fraction"),
            Err(violations) => assert!(
                violations.iter().all(|v| v.contains("exceeded")),
                "shape violation: {violations:?}"
            ),
        }

        // Static analysis: the bound is a soundness claim, so even a toy
        // run gates strictly — no tolerated violation class.
        let an = crate::analysis::run_analysis(&crate::AnalysisBenchConfig {
            window_size: 160,
            ratios: vec![8],
            windows: 3,
            cache_capacity: 16,
            ..crate::AnalysisBenchConfig::quick()
        })
        .unwrap();
        let summary = check_record(&crate::analysis_json(&an)).unwrap();
        assert_eq!(summary.speedup_key, "bound_tightness");
        assert!(summary.speedup <= MAX_BOUND_TIGHTNESS);
        assert_eq!(summary.identity_flags, 2);

        // Chaos: identity and ordering must hold even at toy scale, and the
        // writer records its own ceiling, so the record gates strictly.
        // (The fault guard is already held — taken at the top of the test.)
        let chaos = crate::chaos::run_chaos(&crate::ChaosConfig {
            window_size: 120,
            windows: 4,
            stall_ms: 200,
            deadline_ms: 60,
            ..crate::ChaosConfig::quick(crate::PROGRAM_P)
        })
        .unwrap();
        let summary = check_record(&crate::chaos_json(&chaos)).unwrap();
        assert_eq!(summary.speedup_key, "degraded_window_fraction");
        assert_eq!(summary.identity_flags, 3);
    }
}
