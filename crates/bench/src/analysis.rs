//! Static-bound tightness experiment: the admission-time memory bound
//! ([`sr_core::ProgramBounds`]) versus the delta grounder's *observed*
//! peak state on the same retraction-heavy churn workload the
//! delta-grounding bench uses. Emits `results/BENCH_analysis.json` via
//! [`analysis_json`].
//!
//! The headline `bound_tightness` is `max(observed / predicted)` over the
//! swept slide ratios and must stay `≤ 1.0`: the bound is a soundness
//! claim, so an observed state exceeding it is a correctness bug, not a
//! performance regression. Tightness is additionally reported per run so
//! a bound that silently loosens (tightness collapsing toward zero) is
//! visible in the artifact. Every run is byte-checked against a full
//! non-incremental recompute — a bound that only holds because the
//! reasoner dropped work would be vacuous.

use crate::incremental::community_groups;
use crate::programs::LARGE_TRAFFIC;
use crate::throughput::render_output;
use asp_core::{AspError, Symbols};
use sr_core::{
    AnalysisConfig, DeltaStateSize, DependencyAnalysis, IncrementalReasoner, ParallelMode,
    ParallelReasoner, PlanPartitioner, ProgramBounds, ReasonerConfig, UnknownPredicate, WindowSpec,
};
use sr_stream::{BurstyGenerator, ChurnStream, Window};
use std::fmt::Write as _;
use std::sync::Arc;

/// Bound-tightness experiment definition.
#[derive(Clone, Debug)]
pub struct AnalysisBenchConfig {
    /// ASP source of the program under test.
    pub program: String,
    /// Items per window; must be divisible by every ratio in `ratios`.
    pub window_size: usize,
    /// size/slide ratios to sweep (`8` means slide = size/8; `1` tumbling).
    pub ratios: Vec<usize>,
    /// Windows emitted per ratio.
    pub windows: usize,
    /// Workload seed.
    pub seed: u64,
    /// Partition-cache capacity (entries) for the delta pass.
    pub cache_capacity: usize,
    /// Fraction of each slide's retractions drawn uniformly from the live
    /// window interior (see [`ChurnStream`]); the rest expire FIFO.
    pub retract_fraction: f64,
}

impl AnalysisBenchConfig {
    /// The default sweep: 16 windows of 1,600 items at ratios 8 and 2 on
    /// the large traffic program, with half of every slide's retractions
    /// hitting the window interior — the same churn regime as the
    /// delta-grounding bench, so the observed peaks are the production
    /// worst case the bound must dominate.
    pub fn paper() -> Self {
        AnalysisBenchConfig {
            program: LARGE_TRAFFIC.to_string(),
            window_size: 1_600,
            ratios: vec![8, 2],
            windows: 16,
            seed: 2017,
            cache_capacity: 64,
            retract_fraction: 0.5,
        }
    }

    /// A smoke-test sweep for CI / `--quick`.
    pub fn quick() -> Self {
        AnalysisBenchConfig { window_size: 320, windows: 8, ..Self::paper() }
    }
}

/// One slide's measurement.
#[derive(Clone, Debug)]
pub struct AnalysisRun {
    /// Slide (items) of this run.
    pub slide: usize,
    /// `slide / window_size`.
    pub slide_ratio: f64,
    /// Static bound: total state cells across partitions.
    pub predicted_cells: u128,
    /// Peak observed state cells across partitions (component-wise peak
    /// per partition, summed).
    pub observed_cells: u128,
    /// `observed_cells / predicted_cells`.
    pub tightness: f64,
    /// Whether every partition's observed peak respected its bound,
    /// component by component (not just in total).
    pub within_bound: bool,
    /// Whether the delta pass matched full recomputation byte-for-byte.
    pub output_identical: bool,
}

/// Result of the bound-tightness experiment.
#[derive(Clone, Debug)]
pub struct AnalysisResult {
    /// Items per window.
    pub window_size: usize,
    /// Windows per run.
    pub windows: usize,
    /// Partitions of the dependency plan.
    pub partitions: usize,
    /// Interior-retraction fraction of the churn workload.
    pub retract_fraction: f64,
    /// One measurement per swept ratio.
    pub runs: Vec<AnalysisRun>,
}

impl AnalysisResult {
    /// The headline: worst (largest) observed/predicted ratio over the
    /// sweep. Soundness requires `≤ 1.0`.
    pub fn bound_tightness(&self) -> f64 {
        self.runs.iter().map(|r| r.tightness).fold(0.0, f64::max)
    }

    /// True when every run respected the bound component-wise.
    pub fn all_within_bound(&self) -> bool {
        self.runs.iter().all(|r| r.within_bound)
    }

    /// True when every delta pass matched full recomputation.
    pub fn output_identical_all(&self) -> bool {
        self.runs.iter().all(|r| r.output_identical)
    }
}

/// Builds the retraction-heavy window sequence for one slide (same shape
/// as the delta-grounding bench's workload).
fn churn_windows(
    analysis: &DependencyAnalysis,
    syms: &Symbols,
    config: &AnalysisBenchConfig,
    slide: usize,
) -> Vec<Window> {
    let groups = community_groups(analysis, syms);
    let burst = (slide / groups.len().max(1)).max(1);
    let inner = BurstyGenerator::new(groups, burst, config.window_size as i64, config.seed);
    let mut churn = ChurnStream::new(
        Box::new(inner),
        config.window_size,
        slide,
        config.retract_fraction,
        config.seed,
    );
    churn.windows(config.windows)
}

/// Runs the sweep: per ratio, the static bound for the sliding window is
/// computed once, then a delta-grounding pass tracks the grounder's peak
/// state per partition window by window and checks it against the bound,
/// with a full-recompute pass providing the byte-identity reference.
pub fn run_analysis(config: &AnalysisBenchConfig) -> Result<AnalysisResult, AspError> {
    let syms = Symbols::new();
    let program = asp_parser::parse_program(&syms, &config.program)?;
    let analysis = DependencyAnalysis::analyze(&syms, &program, None, &AnalysisConfig::default())?;
    let partitioner: Arc<dyn sr_core::Partitioner> =
        Arc::new(PlanPartitioner::new(analysis.plan.clone(), UnknownPredicate::Partition0));
    let delta_cfg = ReasonerConfig {
        mode: ParallelMode::Sequential,
        incremental: true,
        delta_ground: true,
        cache_capacity: config.cache_capacity,
        ..Default::default()
    };

    let mut runs = Vec::new();
    for &ratio in &config.ratios {
        assert!(ratio > 0 && config.window_size % ratio == 0, "size must divide by ratio {ratio}");
        let slide = config.window_size / ratio;
        let window_spec = WindowSpec::sliding(config.window_size as u64, slide as u64);
        let predicted = ProgramBounds::analyze(&syms, &program, &analysis, &window_spec);
        let predicted_cells = predicted.total_cells.cells().ok_or_else(|| {
            AspError::Internal("static bound is unbounded for the bench program".into())
        })?;
        let windows = churn_windows(&analysis, &syms, config, slide);

        let mut full = ParallelReasoner::new(
            &syms,
            &program,
            Some(&analysis.inpre),
            partitioner.clone(),
            ReasonerConfig { mode: ParallelMode::Sequential, ..Default::default() },
        )?;
        let mut delta = IncrementalReasoner::new(
            &syms,
            &program,
            Some(&analysis.inpre),
            partitioner.clone(),
            delta_cfg.clone(),
        )?;
        assert!(delta.delta_ground_active(), "traffic program passes every delta gate");

        // Component-wise peak per partition across all windows: the bound
        // must dominate the worst instant, not the final state.
        let mut observed = vec![DeltaStateSize::default(); predicted.partitions.len()];
        let mut output_identical = true;
        for window in &windows {
            let reference = render_output(&syms, &full.process(window)?);
            let out = render_output(&syms, &delta.process(window)?);
            output_identical &= reference == out;
            for (i, size) in delta.delta_state_sizes().into_iter().enumerate() {
                if let Some(peak) = observed.get_mut(i) {
                    *peak = peak.max(size);
                }
            }
        }

        let within_bound =
            observed.iter().zip(&predicted.partitions).all(|(obs, part)| obs.within(&part.state));
        let observed_cells: u128 = observed.iter().map(|o| o.total_cells()).sum();
        runs.push(AnalysisRun {
            slide,
            slide_ratio: slide as f64 / config.window_size as f64,
            predicted_cells,
            observed_cells,
            tightness: if predicted_cells > 0 {
                observed_cells as f64 / predicted_cells as f64
            } else {
                0.0
            },
            within_bound,
            output_identical,
        });
    }

    Ok(AnalysisResult {
        window_size: config.window_size,
        windows: config.windows,
        partitions: analysis.plan.communities,
        retract_fraction: config.retract_fraction,
        runs,
    })
}

/// Renders the result as the `BENCH_analysis.json` document.
pub fn analysis_json(result: &AnalysisResult) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"workload\": \"large_traffic_retraction_heavy_churn\",");
    let _ = writeln!(out, "  \"mode\": \"sequential\",");
    let _ = writeln!(out, "  \"window_size\": {},", result.window_size);
    let _ = writeln!(out, "  \"windows\": {},", result.windows);
    let _ = writeln!(out, "  \"partitions\": {},", result.partitions);
    let _ = writeln!(out, "  \"retract_fraction\": {:.2},", result.retract_fraction);
    let _ = writeln!(out, "  \"sweep\": [");
    for (i, run) in result.runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"slide\": {}, \"slide_ratio\": {:.4}, \"predicted_cells\": {}, \
             \"observed_cells\": {}, \"tightness\": {:.6}, \"within_bound\": {}, \
             \"output_identical\": {}}}{}",
            run.slide,
            run.slide_ratio,
            run.predicted_cells,
            run.observed_cells,
            run.tightness,
            run.within_bound,
            run.output_identical,
            if i + 1 < result.runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"bound_tightness\": {:.6},", result.bound_tightness());
    let _ = writeln!(out, "  \"all_within_bound\": {},", result.all_within_bound());
    let _ = writeln!(out, "  \"output_identical_all\": {}", result.output_identical_all());
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_config() -> AnalysisBenchConfig {
        AnalysisBenchConfig {
            window_size: 160,
            ratios: vec![8, 1],
            windows: 4,
            cache_capacity: 16,
            ..AnalysisBenchConfig::quick()
        }
    }

    #[test]
    fn observed_state_respects_the_static_bound() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        let result = run_analysis(&toy_config()).unwrap();
        assert_eq!(result.runs.len(), 2);
        assert!(result.all_within_bound(), "bound violated: {:?}", result.runs);
        assert!(result.output_identical_all(), "delta pass diverged from full recompute");
        let headline = result.bound_tightness();
        assert!(headline > 0.0 && headline <= 1.0, "tightness out of range: {headline}");
    }

    #[test]
    fn json_document_shape() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        let result = run_analysis(&toy_config()).unwrap();
        let json = analysis_json(&result);
        assert!(json.contains("\"workload\": \"large_traffic_retraction_heavy_churn\""));
        assert!(json.contains("\"sweep\": ["));
        assert!(json.contains("\"predicted_cells\":"));
        assert!(json.contains("\"observed_cells\":"));
        assert!(json.contains("\"bound_tightness\":"));
        assert!(json.contains("\"all_within_bound\": true"));
        assert!(json.contains("\"output_identical_all\": true"));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
