//! Delta-grounding experiment: sliding windows at several slide/size
//! ratios, partition-cache-only incremental reasoning versus the same
//! reasoner with delta-driven grounding inside dirty partitions
//! ([`sr_core::ReasonerConfig::delta_ground`]), on the large traffic rule
//! set with a bursty arrival pattern. Emits
//! `results/BENCH_delta_grounding.json` via [`delta_grounding_json`].
//!
//! Both incremental sides run in [`ParallelMode::Sequential`], so the
//! measured speedup is grounding *work avoided* inside dirty partitions.
//! The workload is **retraction-heavy**: the stream interleaves
//! predicate-group bursts of `slide / communities` items (every slide
//! touches every input-dependency partition — all partitions are dirty
//! every window, the regime where the partition-level result cache, PR 3's
//! lever benchmarked in `BENCH_incremental.json` with slide-*aligned*
//! bursts, cannot help) and feeds them through a
//! [`ChurnStream`]: a fixed fraction of each
//! slide's retractions hits the live window interior rather than the
//! expiring FIFO tail, so the delta grounder's DRed-style
//! over-delete/re-derive path is exercised on facts whose join partners
//! are still live. A full non-incremental pass provides the reference
//! output every window is byte-checked against, plus context for the
//! end-to-end gain. A final single-lane engine pass at the headline ratio
//! records `EngineStats` (lane occupancy, queue high-water, cache + delta
//! counters) for the pipelined wiring.

use crate::incremental::community_groups;
use crate::programs::LARGE_TRAFFIC;
use crate::throughput::{outputs_match, render_output};
use asp_core::{AspError, Symbols};
use sr_core::{
    duration_ms, AnalysisConfig, DependencyAnalysis, EngineConfig, EngineStats,
    IncrementalReasoner, IncrementalSnapshot, ParallelMode, ParallelReasoner, PlanPartitioner,
    Reasoner, ReasonerConfig, StreamEngine, UnknownPredicate,
};
use sr_stream::{BurstyGenerator, ChurnStream, Window};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Delta-grounding experiment definition.
#[derive(Clone, Debug)]
pub struct DeltaGroundingConfig {
    /// ASP source of the program under test.
    pub program: String,
    /// Items per window; must be divisible by every ratio in `ratios`.
    pub window_size: usize,
    /// size/slide ratios to sweep (`8` means slide = size/8; `1` tumbling).
    pub ratios: Vec<usize>,
    /// Windows emitted per ratio.
    pub windows: usize,
    /// Workload seed.
    pub seed: u64,
    /// Partition-cache capacity (entries) for both incremental sides.
    pub cache_capacity: usize,
    /// Fraction of each slide's retractions drawn uniformly from the live
    /// window interior (see [`ChurnStream`]); the rest expire FIFO.
    pub retract_fraction: f64,
}

impl DeltaGroundingConfig {
    /// The default sweep: 24 windows of 1,600 items at ratios 8/4/2/1 on the
    /// large traffic program (4 input-dependency communities), with half of
    /// every slide's retractions hitting the window interior.
    pub fn paper() -> Self {
        DeltaGroundingConfig {
            program: LARGE_TRAFFIC.to_string(),
            window_size: 1_600,
            ratios: vec![8, 4, 2, 1],
            windows: 24,
            seed: 2017,
            cache_capacity: 64,
            retract_fraction: 0.5,
        }
    }

    /// A smoke-test sweep for CI / `--quick`.
    pub fn quick() -> Self {
        DeltaGroundingConfig { window_size: 320, windows: 8, ..Self::paper() }
    }
}

/// One slide's measurement.
#[derive(Clone, Debug)]
pub struct DeltaGroundingRun {
    /// Slide (items) of this run.
    pub slide: usize,
    /// `slide / window_size`.
    pub slide_ratio: f64,
    /// Full (non-incremental) recompute wall time over all windows (ms).
    pub full_ms: f64,
    /// Partition-cache-only incremental wall time (ms) — the baseline the
    /// speedup is measured against.
    pub cache_only_ms: f64,
    /// Delta-grounding incremental wall time (ms).
    pub delta_ms: f64,
    /// `cache_only_ms / delta_ms`.
    pub speedup: f64,
    /// Whether *both* incremental outputs were byte-identical to full
    /// recomputation, window by window.
    pub output_identical: bool,
    /// Cache + delta counters after the delta-grounding pass.
    pub cache: IncrementalSnapshot,
}

/// Result of the delta-grounding experiment.
#[derive(Clone, Debug)]
pub struct DeltaGroundingResult {
    /// Items per window.
    pub window_size: usize,
    /// Windows per run.
    pub windows: usize,
    /// Cache capacity used.
    pub cache_capacity: usize,
    /// Partitions of the dependency plan.
    pub partitions: usize,
    /// Interior-retraction fraction of the churn workload.
    pub retract_fraction: f64,
    /// One measurement per swept ratio.
    pub runs: Vec<DeltaGroundingRun>,
    /// Engine pass at the headline ratio: delta-ground lanes through the
    /// pipelined `StreamEngine` (occupancy, queue high-water, counters).
    pub engine: EngineStats,
    /// Whether the engine pass matched the full recompute output.
    pub engine_output_identical: bool,
}

impl DeltaGroundingResult {
    /// The run at slide/size = 1/8, when swept (the headline ratio).
    pub fn at_eighth(&self) -> Option<&DeltaGroundingRun> {
        self.runs.iter().find(|r| (r.slide_ratio - 0.125).abs() < 1e-9)
    }

    /// True when every run's output (and the engine pass) matched full
    /// recomputation.
    pub fn output_identical_all(&self) -> bool {
        self.runs.iter().all(|r| r.output_identical) && self.engine_output_identical
    }
}

/// Builds the retraction-heavy window sequence for one slide: interleaved
/// community bursts through a [`ChurnStream`] with the configured interior
/// retraction fraction.
fn churn_windows(
    analysis: &DependencyAnalysis,
    syms: &Symbols,
    config: &DeltaGroundingConfig,
    slide: usize,
) -> Vec<Window> {
    let groups = community_groups(analysis, syms);
    let burst = (slide / groups.len().max(1)).max(1);
    let inner = BurstyGenerator::new(groups, burst, config.window_size as i64, config.seed);
    let mut churn = ChurnStream::new(
        Box::new(inner),
        config.window_size,
        slide,
        config.retract_fraction,
        config.seed,
    );
    churn.windows(config.windows)
}

/// Runs `reasoner` over `windows`, returning wall time and rendered answers.
fn timed_pass(
    syms: &Symbols,
    reasoner: &mut dyn Reasoner,
    windows: &[Window],
) -> Result<(f64, Vec<String>), AspError> {
    let mut rendered = Vec::with_capacity(windows.len());
    let t0 = Instant::now();
    for window in windows {
        let out = reasoner.process(window)?;
        rendered.push(render_output(syms, &out));
    }
    Ok((duration_ms(t0.elapsed()), rendered))
}

/// Runs the sweep: per ratio a full-recompute reference pass, a
/// partition-cache-only incremental pass and a delta-grounding pass over
/// the identical window sequence, each verified for byte-identity.
pub fn run_delta_grounding(
    config: &DeltaGroundingConfig,
) -> Result<DeltaGroundingResult, AspError> {
    let syms = Symbols::new();
    let program = asp_parser::parse_program(&syms, &config.program)?;
    let analysis = DependencyAnalysis::analyze(&syms, &program, None, &AnalysisConfig::default())?;
    let partitioner: Arc<dyn sr_core::Partitioner> =
        Arc::new(PlanPartitioner::new(analysis.plan.clone(), UnknownPredicate::Partition0));
    let base_cfg = ReasonerConfig { mode: ParallelMode::Sequential, ..Default::default() };
    let cache_cfg = ReasonerConfig {
        incremental: true,
        cache_capacity: config.cache_capacity,
        ..base_cfg.clone()
    };
    let delta_cfg = ReasonerConfig { delta_ground: true, ..cache_cfg.clone() };

    let mut runs = Vec::new();
    let mut headline_windows: Option<(Vec<Window>, Vec<String>)> = None;
    for &ratio in &config.ratios {
        assert!(ratio > 0 && config.window_size % ratio == 0, "size must divide by ratio {ratio}");
        let slide = config.window_size / ratio;
        let windows = churn_windows(&analysis, &syms, config, slide);

        let mut full = ParallelReasoner::new(
            &syms,
            &program,
            Some(&analysis.inpre),
            partitioner.clone(),
            base_cfg.clone(),
        )?;
        let (full_ms, full_rendered) = timed_pass(&syms, &mut full, &windows)?;

        let mut cache_only = IncrementalReasoner::new(
            &syms,
            &program,
            Some(&analysis.inpre),
            partitioner.clone(),
            cache_cfg.clone(),
        )?;
        let (cache_only_ms, cache_rendered) = timed_pass(&syms, &mut cache_only, &windows)?;

        let mut delta = IncrementalReasoner::new(
            &syms,
            &program,
            Some(&analysis.inpre),
            partitioner.clone(),
            delta_cfg.clone(),
        )?;
        assert!(delta.delta_ground_active(), "traffic program passes every delta gate");
        let (delta_ms, delta_rendered) = timed_pass(&syms, &mut delta, &windows)?;
        let cache = delta.cache().counters().snapshot();

        if ratio == 8 {
            headline_windows = Some((windows.clone(), full_rendered.clone()));
        }
        runs.push(DeltaGroundingRun {
            slide,
            slide_ratio: slide as f64 / config.window_size as f64,
            full_ms,
            cache_only_ms,
            delta_ms,
            speedup: if delta_ms > 0.0 { cache_only_ms / delta_ms } else { 0.0 },
            output_identical: full_rendered == cache_rendered && full_rendered == delta_rendered,
            cache,
        });
    }

    // Engine pass at the headline ratio (or the first swept ratio): a
    // single lane keeps the per-lane delta chain unbroken, which is the
    // regime the delta path accelerates.
    let (engine_windows, engine_expected) = match headline_windows {
        Some(w) => w,
        None => {
            let slide = config.window_size / config.ratios[0];
            let windows = churn_windows(&analysis, &syms, config, slide);
            let mut full = ParallelReasoner::new(
                &syms,
                &program,
                Some(&analysis.inpre),
                partitioner.clone(),
                base_cfg.clone(),
            )?;
            let (_, rendered) = timed_pass(&syms, &mut full, &windows)?;
            (windows, rendered)
        }
    };
    let mut engine = StreamEngine::with_partitioned_lanes(
        &syms,
        &program,
        Some(&analysis.inpre),
        partitioner.clone(),
        ReasonerConfig { mode: ParallelMode::Threads, ..delta_cfg },
        EngineConfig { in_flight: 1, queue_depth: 1, ..Default::default() },
    )?;
    for w in &engine_windows {
        engine.submit(w.clone())?;
    }
    let report = engine.finish();
    let engine_output_identical = outputs_match(&syms, &report.outputs, &engine_expected);

    Ok(DeltaGroundingResult {
        window_size: config.window_size,
        windows: config.windows,
        cache_capacity: config.cache_capacity,
        partitions: analysis.plan.communities,
        retract_fraction: config.retract_fraction,
        runs,
        engine: report.stats,
        engine_output_identical,
    })
}

/// Renders the result as the `BENCH_delta_grounding.json` document.
pub fn delta_grounding_json(result: &DeltaGroundingResult) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"workload\": \"large_traffic_retraction_heavy_churn\",");
    let _ = writeln!(out, "  \"mode\": \"sequential\",");
    let _ = writeln!(out, "  \"baseline\": \"partition_cache_incremental\",");
    let _ = writeln!(out, "  \"window_size\": {},", result.window_size);
    let _ = writeln!(out, "  \"windows\": {},", result.windows);
    let _ = writeln!(out, "  \"cache_capacity\": {},", result.cache_capacity);
    let _ = writeln!(out, "  \"partitions\": {},", result.partitions);
    let _ = writeln!(out, "  \"retract_fraction\": {:.2},", result.retract_fraction);
    let _ = writeln!(out, "  \"sweep\": [");
    for (i, run) in result.runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"slide\": {}, \"slide_ratio\": {:.4}, \"full_ms\": {:.4}, \
             \"cache_only_ms\": {:.4}, \"delta_ms\": {:.4}, \"speedup\": {:.4}, \
             \"output_identical\": {}, \"cache\": {}}}{}",
            run.slide,
            run.slide_ratio,
            run.full_ms,
            run.cache_only_ms,
            run.delta_ms,
            run.speedup,
            run.output_identical,
            run.cache.to_json(),
            if i + 1 < result.runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    // Omitted (not fabricated as 0.0) when ratio 8 wasn't swept: the CI
    // gate then reports a missing headline key instead of a fake
    // regression.
    if let Some(r) = result.at_eighth() {
        let _ = writeln!(out, "  \"speedup_at_eighth\": {:.4},", r.speedup);
    }
    let _ = writeln!(out, "  \"engine\": {},", result.engine.to_json());
    let _ = writeln!(out, "  \"engine_output_identical\": {},", result.engine_output_identical);
    let _ = writeln!(out, "  \"output_identical_all\": {}", result.output_identical_all());
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_config() -> DeltaGroundingConfig {
        DeltaGroundingConfig {
            window_size: 160,
            ratios: vec![8, 1],
            windows: 4,
            cache_capacity: 16,
            ..DeltaGroundingConfig::quick()
        }
    }

    #[test]
    fn sweep_outputs_are_identical_and_delta_path_engages() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        let result = run_delta_grounding(&toy_config()).unwrap();
        assert_eq!(result.runs.len(), 2);
        assert!(result.output_identical_all(), "delta-ground output diverged");
        let eighth = result.at_eighth().expect("ratio 8 swept");
        assert!(
            eighth.cache.delta_applies > 0,
            "churned slides must hit the delta path: {:?}",
            eighth.cache
        );
        assert!(result.engine.lanes.len() == 1, "single-lane engine pass");
        let engine_inc = result.engine.incremental.expect("engine reports counters");
        assert!(engine_inc.delta_applies > 0, "engine lanes delta-ground too: {engine_inc:?}");
    }

    #[test]
    fn json_document_shape() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        let result = run_delta_grounding(&toy_config()).unwrap();
        let json = delta_grounding_json(&result);
        assert!(json.contains("\"baseline\": \"partition_cache_incremental\""));
        assert!(json.contains("\"workload\": \"large_traffic_retraction_heavy_churn\""));
        assert!(json.contains("\"retract_fraction\": 0.50"));
        assert!(json.contains("\"sweep\": ["));
        assert!(json.contains("\"speedup_at_eighth\":"));
        assert!(json.contains("\"delta_applies\":"));
        assert!(json.contains("\"queue_high_water\":"));
        assert!(json.contains("\"output_identical_all\": true"));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn headline_key_is_omitted_when_eighth_not_swept() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        // A custom sweep without ratio 8 must not fabricate a 0.0 headline
        // (which would hard-fail the CI gate on a healthy record); the key
        // is omitted so the gate reports the missing key instead.
        let result =
            run_delta_grounding(&DeltaGroundingConfig { ratios: vec![1], ..toy_config() }).unwrap();
        let json = delta_grounding_json(&result);
        assert!(!json.contains("\"speedup_at_eighth\""), "{json}");
    }
}
