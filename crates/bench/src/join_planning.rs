//! Join-planning experiment: wide-body rules (4–6 positive literals) over a
//! deliberately skewed workload — one dominant `traffic` relation joined
//! against mid-size per-host attribute relations and a handful of tiny
//! filter relations — grounded with the syntactic bound-args heuristic
//! versus cost-based join planning
//! ([`sr_core::ReasonerConfig::cost_planning`]). Emits
//! `results/BENCH_join_planning.json` via [`join_planning_json`].
//!
//! Relation matching is index-based, so join cost is the number of
//! *bindings enumerated*, not tuples scanned. The syntactic heuristic
//! starts every all-unbound body at the first literal in source order —
//! here the dominant `traffic` relation — and then extends each of its
//! `O(0.6·N)` bindings through the high-fanout `hub`/`relay` hops (≈8
//! matches per bound key each) *before* the selective `blacklist`/`ticket`
//! filters get a chance to prune, a multiplicative blowup. The cost
//! planner starts at the tiny filter relation instead, so only a few
//! dozen bindings ever reach the fanout chain. Both orders derive the
//! identical ground program (grounding emits one deduplicated instance
//! per full binding, whatever order produced it), so every cell is
//! byte-checked planner-on versus planner-off and the speedup is pure
//! join-evaluation work avoided.
//!
//! A churn section re-runs the headline size through sliding windows with
//! interior retractions ([`ChurnStream`]) under the delta-grounding
//! incremental reasoner, planner-on versus planner-off, exercising the
//! `asp_grounder::DeltaGrounder` seeded-plan replan path (the
//! `planner_replans` counter in the recorded cache snapshot).

use crate::throughput::render_output;
use asp_core::{AspError, Symbols};
use asp_solver::SolverConfig;
use sr_core::{
    duration_ms, AnalysisConfig, DependencyAnalysis, IncrementalReasoner, IncrementalSnapshot,
    ParallelMode, ParallelReasoner, PlanPartitioner, Reasoner, ReasonerConfig, SingleReasoner,
    UnknownPredicate,
};
use sr_rdf::{Node, Triple};
use sr_stream::{ChurnStream, Window, WorkloadGenerator};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// The wide-body rule set under test: one dominant relation (`traffic`)
/// listed *first* in every body, the high-fanout hops (`hub`, `relay`)
/// next, and the tiny selective filters (`blacklist`, `critical`,
/// `oncall`, `ticket`) last — the syntactic heuristic's worst case, since
/// it walks bodies in exactly that order. Single-head and acyclic, so the
/// delta-grounding fragment accepts it.
pub const JOIN_HEAVY: &str = r#"
    alert(X, W) :- traffic(X, Y), hub(Y, Z), relay(Z, W), blacklist(X, B).
    escalate(X) :- alert(X, W), oncall(W, O), ticket(X, T), blacklist(X, B).
    audit(X) :- traffic(X, Y), hub(Y, Z), critical(Z, C), ticket(X, T).
"#;

/// Hosts eligible for the tiny filter relations: joins against the
/// dominant relation survive only for these ids, keeping the derived set
/// (and so solve time) small while the join *work* scales with the skew.
const FILTER_HOSTS: u64 = 12;

/// Keys of the fanout hops: `traffic` objects land on 8 hubs, each hub
/// fans to up to 8 zones (`hub`), each zone to up to 8 regions (`relay`)
/// — so a binding that reaches the chain unfiltered multiplies ~64×.
const FANOUT: u64 = 8;

/// Deterministic generator of the skewed join workload (split-mix driven;
/// the same seed always replays the same stream). Each window is ~60%
/// `traffic(host, hubK)` tuples over a host universe half the window size
/// (high distinct counts in the subject position, `FANOUT` (8) hub keys in
/// the object position), ~15% `hub(hubK, zoneK)` and ~15%
/// `relay(zoneK, regionK)` fanout tuples, and the remaining ~10% spread
/// over the four selective predicates (`blacklist`/`ticket` restricted to
/// `FILTER_HOSTS` (12) subjects, `oncall` on regions, `critical` on a zone
/// subset).
#[derive(Debug)]
pub struct SkewedJoinGenerator {
    state: u64,
}

impl SkewedJoinGenerator {
    /// A generator over the given seed.
    pub fn new(seed: u64) -> Self {
        SkewedJoinGenerator { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// split-mix-64 step.
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn triple(subject: &str, predicate: &str, object: &str) -> Triple {
        Triple::new(Node::iri(subject), Node::iri(predicate), Node::iri(object))
    }
}

impl WorkloadGenerator for SkewedJoinGenerator {
    fn window(&mut self, size: usize) -> Vec<Triple> {
        let hosts = ((size / 2) as u64).max(FILTER_HOSTS * 2);
        let host = |i: u64| format!("h{i}");
        let mut out = Vec::with_capacity(size);
        let n_traffic = size * 6 / 10;
        let n_fanout = size * 15 / 100;
        for _ in 0..n_traffic {
            let a = self.next() % hosts;
            let b = self.next() % FANOUT;
            out.push(Self::triple(&host(a), "traffic", &format!("hub{b}")));
        }
        for _ in 0..n_fanout {
            let (a, b) = (self.next() % FANOUT, self.next() % FANOUT);
            out.push(Self::triple(&format!("hub{a}"), "hub", &format!("zone{b}")));
        }
        for _ in 0..n_fanout {
            let (a, b) = (self.next() % FANOUT, self.next() % FANOUT);
            out.push(Self::triple(&format!("zone{a}"), "relay", &format!("region{b}")));
        }
        let mut k = 0u64;
        while out.len() < size {
            match k % 4 {
                0 => {
                    let i = self.next() % FILTER_HOSTS;
                    out.push(Self::triple(&host(i), "blacklist", &format!("tag{}", i % 3)));
                }
                1 => {
                    let i = self.next() % FILTER_HOSTS;
                    out.push(Self::triple(&host(i), "ticket", &format!("t{}", i % 4)));
                }
                2 => {
                    let i = self.next() % FANOUT;
                    out.push(Self::triple(
                        &format!("region{i}"),
                        "oncall",
                        &format!("op{}", i % 3),
                    ));
                }
                _ => {
                    let i = self.next() % 3;
                    out.push(Self::triple(
                        &format!("zone{i}"),
                        "critical",
                        &format!("sev{}", i % 2),
                    ));
                }
            }
            k += 1;
        }
        out
    }
}

/// Join-planning experiment definition.
#[derive(Clone, Debug)]
pub struct JoinPlanningConfig {
    /// ASP source of the program under test.
    pub program: String,
    /// Window sizes (items) of the scratch-grounding sweep; the largest is
    /// the headline cell.
    pub sizes: Vec<usize>,
    /// Windows per cell.
    pub windows: usize,
    /// Workload seed.
    pub seed: u64,
    /// Partition-cache capacity of the churn section's incremental sides.
    pub cache_capacity: usize,
    /// Interior-retraction fraction of the churn section (see
    /// [`ChurnStream`]).
    pub retract_fraction: f64,
}

impl JoinPlanningConfig {
    /// The default sweep: 12 windows per cell at 400/800/1600 items on the
    /// wide-body rule set.
    pub fn paper() -> Self {
        JoinPlanningConfig {
            program: JOIN_HEAVY.to_string(),
            sizes: vec![400, 800, 1_600],
            windows: 12,
            seed: 2017,
            cache_capacity: 32,
            retract_fraction: 0.5,
        }
    }

    /// A smoke-test sweep for CI / `--quick`.
    pub fn quick() -> Self {
        JoinPlanningConfig { sizes: vec![200, 400], windows: 6, ..Self::paper() }
    }
}

/// One scratch-grounding cell: the same windows grounded with the
/// syntactic heuristic and with the cost planner.
#[derive(Clone, Debug)]
pub struct JoinPlanningRun {
    /// Items per window in this cell.
    pub window_size: usize,
    /// Wall time of the syntactic-heuristic pass (ms).
    pub syntactic_ms: f64,
    /// Wall time of the cost-planning pass (ms).
    pub planner_ms: f64,
    /// `syntactic_ms / planner_ms`.
    pub speedup: f64,
    /// Whether both passes rendered byte-identical answers every window.
    pub output_identical: bool,
}

/// The churn section's measurement: delta-grounding incremental reasoner
/// over sliding windows with interior retractions, planner-off vs on.
#[derive(Clone, Debug)]
pub struct JoinPlanningChurn {
    /// Items per window.
    pub window_size: usize,
    /// Slide (items).
    pub slide: usize,
    /// Planner-off wall time (ms).
    pub syntactic_ms: f64,
    /// Planner-on wall time (ms).
    pub planner_ms: f64,
    /// `syntactic_ms / planner_ms`.
    pub speedup: f64,
    /// Whether both incremental passes matched the full-recompute
    /// reference, window by window.
    pub output_identical: bool,
    /// Cache + planner counters after the planner-on pass
    /// (`planner_replans` > 0 shows the seeded-plan replan path engaged).
    pub cache: IncrementalSnapshot,
}

/// Result of the join-planning experiment.
#[derive(Clone, Debug)]
pub struct JoinPlanningResult {
    /// Windows per cell.
    pub windows: usize,
    /// One cell per swept window size.
    pub runs: Vec<JoinPlanningRun>,
    /// The churn section at the largest swept size.
    pub churn: JoinPlanningChurn,
}

impl JoinPlanningResult {
    /// The headline cell: the largest swept window size.
    pub fn headline(&self) -> Option<&JoinPlanningRun> {
        self.runs.iter().max_by_key(|r| r.window_size)
    }

    /// True when every cell (and the churn section) was byte-identical
    /// planner-on versus planner-off.
    pub fn output_identical_all(&self) -> bool {
        self.runs.iter().all(|r| r.output_identical) && self.churn.output_identical
    }
}

/// Runs `reasoner` over `windows`, returning wall time and rendered answers.
fn timed_pass(
    syms: &Symbols,
    reasoner: &mut dyn Reasoner,
    windows: &[Window],
) -> Result<(f64, Vec<String>), AspError> {
    let mut rendered = Vec::with_capacity(windows.len());
    let t0 = Instant::now();
    for window in windows {
        let out = reasoner.process(window)?;
        rendered.push(render_output(syms, &out));
    }
    Ok((duration_ms(t0.elapsed()), rendered))
}

/// Runs the experiment: per window size a planner-off and a planner-on
/// scratch pass over identical windows (byte-checked), then the churn
/// section under the delta-grounding incremental reasoner at the largest
/// size.
pub fn run_join_planning(config: &JoinPlanningConfig) -> Result<JoinPlanningResult, AspError> {
    let syms = Symbols::new();
    let program = asp_parser::parse_program(&syms, &config.program)?;

    let mut runs = Vec::new();
    for &size in &config.sizes {
        let mut generator = SkewedJoinGenerator::new(config.seed);
        let windows: Vec<Window> =
            (0..config.windows).map(|id| Window::new(id as u64, generator.window(size))).collect();

        let mut passes = Vec::new();
        for cost_planning in [false, true] {
            let mut reasoner = SingleReasoner::new(&syms, &program, None, SolverConfig::default())?;
            reasoner.set_cost_planning(cost_planning);
            passes.push(timed_pass(&syms, &mut reasoner, &windows)?);
        }
        let (planner_ms, planner_rendered) = passes.pop().expect("two passes");
        let (syntactic_ms, syntactic_rendered) = passes.pop().expect("two passes");
        runs.push(JoinPlanningRun {
            window_size: size,
            syntactic_ms,
            planner_ms,
            speedup: if planner_ms > 0.0 { syntactic_ms / planner_ms } else { 0.0 },
            output_identical: syntactic_rendered == planner_rendered,
        });
    }

    // Churn section: sliding windows with interior retractions through the
    // delta-grounding incremental reasoner, planner-off vs on, both
    // byte-checked against a full (non-incremental) reference pass.
    let size = config.sizes.iter().copied().max().expect("at least one size");
    let slide = (size / 4).max(1);
    let inner = Box::new(SkewedJoinGenerator::new(config.seed));
    let mut churn_stream =
        ChurnStream::new(inner, size, slide, config.retract_fraction, config.seed);
    let windows = churn_stream.windows(config.windows);

    let analysis = DependencyAnalysis::analyze(&syms, &program, None, &AnalysisConfig::default())?;
    let partitioner: Arc<dyn sr_core::Partitioner> =
        Arc::new(PlanPartitioner::new(analysis.plan.clone(), UnknownPredicate::Partition0));
    let base_cfg = ReasonerConfig { mode: ParallelMode::Sequential, ..Default::default() };
    let mut full = ParallelReasoner::new(
        &syms,
        &program,
        Some(&analysis.inpre),
        partitioner.clone(),
        base_cfg.clone(),
    )?;
    let (_, reference) = timed_pass(&syms, &mut full, &windows)?;

    let mut churn_ms = [0.0f64; 2];
    let mut churn_identical = true;
    let mut snapshot: Option<IncrementalSnapshot> = None;
    for (side, cost_planning) in [false, true].into_iter().enumerate() {
        let delta_cfg = ReasonerConfig {
            incremental: true,
            cache_capacity: config.cache_capacity,
            delta_ground: true,
            cost_planning,
            ..base_cfg.clone()
        };
        let mut delta = IncrementalReasoner::new(
            &syms,
            &program,
            Some(&analysis.inpre),
            partitioner.clone(),
            delta_cfg,
        )?;
        assert!(delta.delta_ground_active(), "JOIN_HEAVY passes every delta gate");
        let (ms, rendered) = timed_pass(&syms, &mut delta, &windows)?;
        churn_ms[side] = ms;
        churn_identical &= rendered == reference;
        if cost_planning {
            snapshot = Some(delta.cache().counters().snapshot());
        }
    }
    let churn = JoinPlanningChurn {
        window_size: size,
        slide,
        syntactic_ms: churn_ms[0],
        planner_ms: churn_ms[1],
        speedup: if churn_ms[1] > 0.0 { churn_ms[0] / churn_ms[1] } else { 0.0 },
        output_identical: churn_identical,
        cache: snapshot.expect("planner-on churn pass ran"),
    };

    Ok(JoinPlanningResult { windows: config.windows, runs, churn })
}

/// Renders the result as the `BENCH_join_planning.json` document.
pub fn join_planning_json(result: &JoinPlanningResult) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"workload\": \"skewed_wide_body_joins\",");
    let _ = writeln!(out, "  \"baseline\": \"syntactic_bound_args_heuristic\",");
    let _ = writeln!(out, "  \"mode\": \"sequential\",");
    let _ = writeln!(out, "  \"windows\": {},", result.windows);
    let _ = writeln!(out, "  \"sweep\": [");
    for (i, run) in result.runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"window_size\": {}, \"syntactic_ms\": {:.4}, \"planner_ms\": {:.4}, \
             \"speedup\": {:.4}, \"output_identical\": {}}}{}",
            run.window_size,
            run.syntactic_ms,
            run.planner_ms,
            run.speedup,
            run.output_identical,
            if i + 1 < result.runs.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    // Omitted (not fabricated as 0.0) when nothing was swept: the CI gate
    // then reports a missing headline key instead of a fake regression.
    if let Some(headline) = result.headline() {
        let _ = writeln!(out, "  \"planner_speedup\": {:.4},", headline.speedup);
    }
    let churn = &result.churn;
    let _ = writeln!(
        out,
        "  \"churn\": {{\"window_size\": {}, \"slide\": {}, \"syntactic_ms\": {:.4}, \
         \"planner_ms\": {:.4}, \"speedup\": {:.4}, \"output_identical\": {}, \"cache\": {}}},",
        churn.window_size,
        churn.slide,
        churn.syntactic_ms,
        churn.planner_ms,
        churn.speedup,
        churn.output_identical,
        churn.cache.to_json()
    );
    let _ = writeln!(out, "  \"output_identical_all\": {}", result.output_identical_all());
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_config() -> JoinPlanningConfig {
        JoinPlanningConfig {
            sizes: vec![160],
            windows: 3,
            cache_capacity: 8,
            ..JoinPlanningConfig::quick()
        }
    }

    #[test]
    fn outputs_are_identical_and_planner_counters_engage() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        let result = run_join_planning(&toy_config()).unwrap();
        assert_eq!(result.runs.len(), 1);
        assert!(result.output_identical_all(), "cost planning changed answers");
        let cache = &result.churn.cache;
        assert!(cache.cost_planning, "planner-on churn pass must report its counters");
        assert!(
            cache.planner_replans > 0,
            "churned windows must trigger at least one stats-driven replan: {cache:?}"
        );
        assert!(
            cache.delta_applies + cache.delta_regrounds > 0,
            "churn section must exercise the maintained grounder: {cache:?}"
        );
    }

    #[test]
    fn json_document_shape() {
        // Hold the process-global fault guard: a concurrent chaos test's
        // installed plan would otherwise inject faults into this run.
        let _guard = sr_core::fault::test_guard();
        let result = run_join_planning(&toy_config()).unwrap();
        let json = join_planning_json(&result);
        assert!(json.contains("\"workload\": \"skewed_wide_body_joins\""));
        assert!(json.contains("\"baseline\": \"syntactic_bound_args_heuristic\""));
        assert!(json.contains("\"planner_speedup\":"));
        assert!(json.contains("\"churn\": {"));
        assert!(json.contains("\"planner_replans\":"));
        assert!(json.contains("\"output_identical_all\": true"));
        // The record must not carry an earlier headline key: `repro check`
        // takes the FIRST key of its list that is present.
        for foreign in
            ["speedup_at_eighth", "best_speedup_windows_per_sec", "shared_work_speedup_at_dup1"]
        {
            assert!(!json.contains(foreign), "{foreign} leaked into the record");
        }
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn generator_is_deterministic_and_skewed() {
        let mut a = SkewedJoinGenerator::new(7);
        let mut b = SkewedJoinGenerator::new(7);
        let (wa, wb) = (a.window(200), b.window(200));
        assert_eq!(wa, wb, "same seed must replay the same window");
        let count = |w: &[Triple], p: &str| w.iter().filter(|t| t.predicate_name() == p).count();
        let traffic = count(&wa, "traffic");
        let blacklist = count(&wa, "blacklist");
        assert!(traffic >= 20 * blacklist.max(1), "skew collapsed: {traffic} vs {blacklist}");
    }
}
