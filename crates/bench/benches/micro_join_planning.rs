//! Join-planning microbenchmark, two layers:
//!
//! * **plan construction** — [`asp_grounder::planner::plan`] on the
//!   wide-body rules of [`sr_bench::JOIN_HEAVY`] under the syntactic cost
//!   (the original `make_plan` heuristic expressed as a [`CostSource`])
//!   versus live [`RelationStats`]: the pure planning overhead the cost
//!   planner adds per (re)plan, amortized over every window a plan serves;
//! * **grounding** — [`asp_grounder::Grounder::ground`] over a skewed
//!   window, planner-off versus planner-on: the join-evaluation work the
//!   reordered plans actually avoid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sr_bench::{SkewedJoinGenerator, JOIN_HEAVY};
use sr_stream::WorkloadGenerator;
use std::hint::black_box;

fn micro_join_planning(c: &mut Criterion) {
    let syms = asp_core::Symbols::new();
    let program = asp_parser::parse_program(&syms, JOIN_HEAVY).expect("parse");
    let inpre = program.edb_predicates();
    let format_cfg = sr_rdf::FormatConfig::from_input_signature(&syms, &inpre);
    let mut format = sr_rdf::FormatProcessor::new(&syms, &format_cfg);

    const WINDOW: usize = 1_600;
    let mut generator = SkewedJoinGenerator::new(7);
    let facts = format.window_to_facts(&generator.window(WINDOW));

    let mut stats = asp_grounder::RelationStats::new();
    for f in &facts {
        stats.insert(f.predicate(), &f.args);
    }
    let compiled: Vec<_> = program
        .rules
        .iter()
        .enumerate()
        .map(|(i, r)| asp_grounder::compile::compile_rule(&syms, r, i).expect("compile"))
        .collect();

    let mut group = c.benchmark_group("join_planning");
    group.sample_size(20);

    group.bench_function(BenchmarkId::new("plan_syntactic", compiled.len()), |b| {
        b.iter(|| {
            for c in &compiled {
                black_box(
                    asp_grounder::planner::plan(
                        &c.body,
                        c.var_count,
                        None,
                        &asp_grounder::SyntacticCost,
                    )
                    .expect("plan"),
                );
            }
        });
    });
    group.bench_function(BenchmarkId::new("plan_cost_based", compiled.len()), |b| {
        b.iter(|| {
            for c in &compiled {
                black_box(
                    asp_grounder::planner::plan(&c.body, c.var_count, None, &stats).expect("plan"),
                );
            }
        });
    });

    for cost_planning in [false, true] {
        let mut grounder = asp_grounder::Grounder::new(&syms, &program).expect("grounder");
        grounder.set_cost_planning(cost_planning);
        let label = if cost_planning { "ground_planner_on" } else { "ground_planner_off" };
        group.bench_function(BenchmarkId::new(label, WINDOW), |b| {
            b.iter(|| black_box(grounder.ground(&facts).expect("ground")));
        });
    }
    group.finish();
}

criterion_group!(benches, micro_join_planning);
criterion_main!(benches);
