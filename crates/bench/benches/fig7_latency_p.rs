//! Criterion bench for Figure 7: reasoning latency on program P for the
//! series R, PR_Dep, PR_Ran_k2 and PR_Ran_k5 across window sizes.
//!
//! The full 8-point × 6-series sweep lives in the `repro` binary; this bench
//! times a representative subset with Criterion's statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sr_bench::{ExperimentBench, ExperimentConfig, PROGRAM_P};
use sr_stream::{paper_generator, GeneratorKind, Window};
use std::hint::black_box;

fn fig7(c: &mut Criterion) {
    let cfg = ExperimentConfig::paper(PROGRAM_P, GeneratorKind::Correlated);
    let mut bench = ExperimentBench::build(&cfg).expect("build reasoners");
    let mut generator = paper_generator(GeneratorKind::Correlated, 2017);

    let mut group = c.benchmark_group("fig7_latency_p");
    group.sample_size(10);
    for &size in &[5_000usize, 20_000, 40_000] {
        let window = Window::new(size as u64, generator.window(size));
        group.bench_with_input(BenchmarkId::new("R", size), &window, |b, w| {
            b.iter(|| black_box(bench.r.process(w).expect("R")));
        });
        group.bench_with_input(BenchmarkId::new("PR_Dep", size), &window, |b, w| {
            b.iter(|| black_box(bench.pr_dep.process(w).expect("PR_Dep")));
        });
        // pr_ran holds k = 2, 3, 4, 5 in order; bench the extremes.
        for ki in [0usize, 3] {
            let k = bench.pr_ran[ki].0;
            let label = format!("PR_Ran_k{k}");
            group.bench_with_input(BenchmarkId::new(&label, size), &window, |b, w| {
                b.iter(|| black_box(bench.pr_ran[ki].1.process(w).expect("PR_Ran")));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
