//! Criterion bench for Figure 9: reasoning latency on program P' (connected
//! input dependency graph, duplicated `car_number`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sr_bench::{program_p_prime, ExperimentBench, ExperimentConfig};
use sr_stream::{paper_generator, GeneratorKind, Window};
use std::hint::black_box;

fn fig9(c: &mut Criterion) {
    let program = program_p_prime();
    let cfg = ExperimentConfig::paper(&program, GeneratorKind::Correlated);
    let mut bench = ExperimentBench::build(&cfg).expect("build reasoners");
    assert_eq!(
        bench.analysis.plan.duplicated(),
        vec!["car_number"],
        "P' must duplicate car_number"
    );
    let mut generator = paper_generator(GeneratorKind::Correlated, 2017);

    let mut group = c.benchmark_group("fig9_latency_pprime");
    group.sample_size(10);
    for &size in &[5_000usize, 20_000, 40_000] {
        let window = Window::new(size as u64, generator.window(size));
        group.bench_with_input(BenchmarkId::new("R", size), &window, |b, w| {
            b.iter(|| black_box(bench.r.process(w).expect("R")));
        });
        group.bench_with_input(BenchmarkId::new("PR_Dep", size), &window, |b, w| {
            b.iter(|| black_box(bench.pr_dep.process(w).expect("PR_Dep")));
        });
        for ki in [0usize, 3] {
            let k = bench.pr_ran[ki].0;
            let label = format!("PR_Ran_k{k}");
            group.bench_with_input(BenchmarkId::new(&label, size), &window, |b, w| {
                b.iter(|| black_box(bench.pr_ran[ki].1.process(w).expect("PR_Ran")));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
