//! Component microbenchmarks: grounding, solving, RDF transformation and the
//! design-time analysis, isolating where window latency goes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sr_bench::PROGRAM_P;
use sr_core::{AnalysisConfig, DependencyAnalysis};
use sr_stream::{paper_generator, GeneratorKind};
use std::hint::black_box;

fn micro(c: &mut Criterion) {
    let syms = asp_core::Symbols::new();
    let program = asp_parser::parse_program(&syms, PROGRAM_P).expect("parse");
    let inpre = program.edb_predicates();
    let grounder = asp_grounder::Grounder::new(&syms, &program).expect("compile");
    let format_cfg = sr_rdf::FormatConfig::from_input_signature(&syms, &inpre);
    let mut format = sr_rdf::FormatProcessor::new(&syms, &format_cfg);
    let mut generator = paper_generator(GeneratorKind::Correlated, 5);

    let mut group = c.benchmark_group("micro");
    group.sample_size(10);
    for &size in &[5_000usize, 20_000] {
        let triples = generator.window(size);
        group.bench_with_input(BenchmarkId::new("transform", size), &triples, |b, t| {
            b.iter(|| black_box(format.window_to_facts(t)));
        });
        let facts = format.window_to_facts(&triples);
        group.bench_with_input(BenchmarkId::new("ground", size), &facts, |b, f| {
            b.iter(|| black_box(grounder.ground(f).expect("ground")));
        });
        let ground = grounder.ground(&facts).expect("ground");
        group.bench_with_input(BenchmarkId::new("solve", size), &ground, |b, g| {
            b.iter(|| {
                black_box(
                    asp_solver::solve_ground(&syms, g, &asp_solver::SolverConfig::default())
                        .expect("solve"),
                )
            });
        });
    }
    group.bench_function("design_time_analysis", |b| {
        b.iter(|| {
            black_box(
                DependencyAnalysis::analyze(&syms, &program, None, &AnalysisConfig::default())
                    .expect("analyze"),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, micro);
criterion_main!(benches);
