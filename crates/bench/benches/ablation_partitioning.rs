//! Ablation benches for the design choices DESIGN.md calls out:
//! * Algorithm 1 (plan-driven grouping) vs random splitting vs atom-level
//!   partitioning, as pure partitioning cost;
//! * Louvain at different resolutions on synthetic community graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sr_bench::{ExperimentBench, ExperimentConfig, PROGRAM_P};
use sr_core::{
    atom_level_partition, Partitioner, PlanPartitioner, RandomPartitioner, UnknownPredicate,
};
use sr_graph::{louvain, UnGraph};
use sr_stream::{paper_generator, GeneratorKind, Window};
use std::collections::HashSet;
use std::hint::black_box;

fn partitioning(c: &mut Criterion) {
    let cfg = ExperimentConfig::paper(PROGRAM_P, GeneratorKind::Correlated);
    let bench = ExperimentBench::build(&cfg).expect("build");
    let plan_part = PlanPartitioner::new(bench.analysis.plan.clone(), UnknownPredicate::Partition0);
    let ran_part = RandomPartitioner::new(2, 7);
    let mut generator = paper_generator(GeneratorKind::Correlated, 9);

    let mut group = c.benchmark_group("ablation_partitioning");
    group.sample_size(20);
    for &size in &[10_000usize, 40_000] {
        let window = Window::new(size as u64, generator.window(size));
        group.bench_with_input(BenchmarkId::new("algorithm1_plan", size), &window, |b, w| {
            b.iter(|| black_box(plan_part.partition(w)));
        });
        group.bench_with_input(BenchmarkId::new("random_k2", size), &window, |b, w| {
            b.iter(|| black_box(ran_part.partition(w)));
        });
        let no_self_loops = HashSet::new();
        group.bench_with_input(BenchmarkId::new("atom_level", size), &window, |b, w| {
            b.iter(|| black_box(atom_level_partition(&w.items, &no_self_loops, 8)));
        });
    }
    group.finish();
}

/// Ring of `k` cliques of size `m`, the classic Louvain stress shape.
fn ring_of_cliques(k: usize, m: usize) -> UnGraph {
    let mut g = UnGraph::new(k * m);
    for c in 0..k {
        let base = c * m;
        for i in 0..m {
            for j in (i + 1)..m {
                g.add_edge(base + i, base + j, 1.0);
            }
        }
        let next_base = ((c + 1) % k) * m;
        g.add_edge(base, next_base, 1.0);
    }
    g
}

fn louvain_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_louvain");
    group.sample_size(20);
    for &(k, m) in &[(10usize, 10usize), (50, 10), (100, 20)] {
        let g = ring_of_cliques(k, m);
        for &resolution in &[0.5f64, 1.0, 2.0] {
            let label = format!("k{k}_m{m}_res{resolution}");
            group.bench_function(BenchmarkId::new("louvain", &label), |b| {
                b.iter(|| black_box(louvain(&g, resolution)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, partitioning, louvain_bench);
criterion_main!(benches);
