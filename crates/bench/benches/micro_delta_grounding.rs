//! Delta-grounding microbenchmark: full [`Grounder::ground`] over a window
//! versus [`DeltaGrounder::apply`] of a window delta against maintained
//! state, at delta ratios 1/64..1 of the window, on the traffic program.
//!
//! Each `apply` measurement performs a *round trip* (apply the delta, then
//! apply its inverse) so the maintained state returns to the baseline
//! between iterations; the reported time therefore covers two delta
//! applications of the given size. `apply+answer` adds the per-window
//! answer-set extraction (the work the incremental reasoner actually runs
//! per dirty partition), while the scratch side pays ground + solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sr_bench::PROGRAM_P;
use std::hint::black_box;
use std::sync::Arc;

fn micro_delta(c: &mut Criterion) {
    let syms = asp_core::Symbols::new();
    let program = asp_parser::parse_program(&syms, PROGRAM_P).expect("parse");
    let inpre = program.edb_predicates();
    let grounder = Arc::new(asp_grounder::Grounder::new(&syms, &program).expect("compile"));
    let format_cfg = sr_rdf::FormatConfig::from_input_signature(&syms, &inpre);
    let mut format = sr_rdf::FormatProcessor::new(&syms, &format_cfg);
    let mut generator = sr_stream::paper_generator(sr_stream::GeneratorKind::Correlated, 5);

    const WINDOW: usize = 4_096;
    let window = generator.window(WINDOW);
    let incoming = generator.window(WINDOW);
    let facts = format.window_to_facts(&window);
    let fresh = format.window_to_facts(&incoming);

    let mut group = c.benchmark_group("delta_ground");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("full_ground", WINDOW), |b| {
        b.iter(|| black_box(grounder.ground(&facts).expect("ground")));
    });
    let gp = grounder.ground(&facts).expect("ground");
    group.bench_function(BenchmarkId::new("full_solve", WINDOW), |b| {
        b.iter(|| {
            black_box(
                asp_solver::solve_ground(&syms, &gp, &asp_solver::SolverConfig::default())
                    .expect("solve"),
            )
        });
    });

    for ratio in [64usize, 16, 4, 1] {
        let delta = WINDOW / ratio;
        let added = &fresh[..delta];
        let retracted = &facts[..delta];
        let mut dg = asp_grounder::DeltaGrounder::new(Arc::clone(&grounder)).expect("delta");
        dg.apply(&facts, &[]).expect("seed");
        group.bench_with_input(
            BenchmarkId::new("apply_roundtrip", format!("1/{ratio}")),
            &delta,
            |b, _| {
                b.iter(|| {
                    dg.apply(added, retracted).expect("forward");
                    dg.apply(retracted, added).expect("inverse");
                    black_box(dg.instantiations());
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("apply_answer_roundtrip", format!("1/{ratio}")),
            &delta,
            |b, _| {
                b.iter(|| {
                    dg.apply(added, retracted).expect("forward");
                    black_box(dg.answer());
                    dg.apply(retracted, added).expect("inverse");
                    black_box(dg.answer());
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, micro_delta);
criterion_main!(benches);
