//! Combinatorial stress tests with known solution counts: the solver must
//! enumerate exactly the right number of stable models on classic encodings
//! that exercise choice rules, constraints, disjunction, arithmetic and
//! non-trivial search.

use asp_core::Symbols;
use asp_parser::parse_program;
use asp_solver::{solve, SolverConfig};

fn count_models(src: &str) -> usize {
    let syms = Symbols::new();
    let program = parse_program(&syms, src).unwrap();
    solve(&syms, &program, &[], &SolverConfig::default()).unwrap().answer_sets.len()
}

fn queens_program(n: usize) -> String {
    format!(
        "#const n = {n}.\n\
         row(1..n). col(1..n).\n\
         {{ q(R,C) }} :- row(R), col(C).\n\
         placed(R) :- q(R,C).\n\
         :- row(R), not placed(R).\n\
         :- q(R,C1), q(R,C2), C1 < C2.\n\
         :- q(R1,C), q(R2,C), R1 < R2.\n\
         :- q(R1,C1), q(R2,C2), R1 < R2, C2 = C1 + R2 - R1.\n\
         :- q(R1,C1), q(R2,C2), R1 < R2, C2 = C1 - R2 + R1.\n"
    )
}

#[test]
fn four_queens_has_two_solutions() {
    assert_eq!(count_models(&queens_program(4)), 2);
}

#[test]
fn five_queens_has_ten_solutions() {
    assert_eq!(count_models(&queens_program(5)), 10);
}

#[test]
fn six_queens_has_four_solutions() {
    assert_eq!(count_models(&queens_program(6)), 4);
}

#[test]
fn three_queens_is_unsat() {
    assert_eq!(count_models(&queens_program(3)), 0);
}

fn coloring_program(edges: &[(u32, u32)], nodes: u32) -> String {
    let mut src = String::new();
    for v in 1..=nodes {
        src.push_str(&format!("node({v}).\n"));
    }
    for (a, b) in edges {
        src.push_str(&format!("edge({a},{b}).\n"));
    }
    src.push_str(
        "color(X, r) | color(X, g) | color(X, b) :- node(X).\n\
         :- edge(X,Y), color(X,C), color(Y,C).\n",
    );
    src
}

#[test]
fn triangle_has_six_colorings() {
    assert_eq!(count_models(&coloring_program(&[(1, 2), (2, 3), (1, 3)], 3)), 6);
}

#[test]
fn k4_is_not_three_colorable() {
    let k4 = [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)];
    assert_eq!(count_models(&coloring_program(&k4, 4)), 0);
}

#[test]
fn path_graph_colorings() {
    // P3 (path with 3 nodes): 3 * 2 * 2 = 12 proper 3-colorings.
    assert_eq!(count_models(&coloring_program(&[(1, 2), (2, 3)], 3)), 12);
}

#[test]
fn cycle_c5_colorings() {
    // Chromatic polynomial of C5 at k=3: (3-1)^5 + (3-1)*(-1)^5 = 30.
    let c5 = [(1, 2), (2, 3), (3, 4), (4, 5), (1, 5)];
    assert_eq!(count_models(&coloring_program(&c5, 5)), 30);
}

#[test]
fn independent_sets_of_a_path() {
    // Independent sets of P4 = Fibonacci(6) = 8 (including the empty set).
    let src = "
        node(1). node(2). node(3). node(4).
        edge(1,2). edge(2,3). edge(3,4).
        { in(X) } :- node(X).
        :- edge(X,Y), in(X), in(Y).
    ";
    assert_eq!(count_models(src), 8);
}

#[test]
fn hamiltonian_cycles_of_k4() {
    // Directed Hamiltonian cycles of K4: (4-1)! = 6. The encoding uses
    // recursive reachability (non-tight!) to force connectivity.
    let mut src = String::new();
    for v in 1..=4 {
        src.push_str(&format!("node({v}).\n"));
    }
    for a in 1..=4u32 {
        for b in 1..=4u32 {
            if a != b {
                src.push_str(&format!("arc({a},{b}).\n"));
            }
        }
    }
    src.push_str(
        "{ go(X,Y) } :- arc(X,Y).\n\
         :- go(X,Y1), go(X,Y2), Y1 < Y2.\n\
         :- go(X1,Y), go(X2,Y), X1 < X2.\n\
         out_ok(X) :- go(X,Y).\n\
         in_ok(Y) :- go(X,Y).\n\
         :- node(X), not out_ok(X).\n\
         :- node(X), not in_ok(X).\n\
         reach(1).\n\
         reach(Y) :- reach(X), go(X,Y).\n\
         :- node(X), not reach(X).\n",
    );
    assert_eq!(count_models(&src), 6);
}

#[test]
fn schur_like_partition_count() {
    // Partition {1..4} into 2 sum-free-ish sets: forbid x + x = z within a
    // part for pairs we can express (x,z both in 1..4 and z = 2x).
    let src = "
        n(1). n(2). n(3). n(4).
        part(X, a) | part(X, b) :- n(X).
        :- part(X, P), part(Z, P), Z = 2 * X.
    ";
    // Every assignment where x and 2x are separated: 1,2 separated; 2,4
    // separated. 1 has 2 choices; 2 determined by 1; 4 determined by 2;
    // 3 free => 2 * 2 = 4 models.
    assert_eq!(count_models(src), 4);
}

#[test]
fn deep_negation_chain() {
    // Alternating negation chain p0 <- not p1 <- not p2 ... with a fact at
    // the end: exactly one model, truth alternating.
    let mut src = String::new();
    let n = 30;
    for i in 0..n {
        src.push_str(&format!("p{i} :- not p{}.\n", i + 1));
    }
    src.push_str(&format!("p{n}.\n"));
    let syms = Symbols::new();
    let program = parse_program(&syms, &src).unwrap();
    let result = solve(&syms, &program, &[], &SolverConfig::default()).unwrap();
    assert_eq!(result.answer_sets.len(), 1);
    let ans = result.answer_sets[0].display(&syms).to_string();
    assert!(ans.contains(&format!("p{n}")));
    assert!(!ans.contains("p29 "), "p29 must be false (p30 true): {ans}");
}

#[test]
fn large_tight_program_is_fast() {
    // 2000-fact chain program: linear propagation, no search.
    let mut src = String::new();
    for i in 0..2000 {
        src.push_str(&format!("e({i}).\n"));
    }
    src.push_str("h(X) :- e(X), X > 1000.\n");
    let syms = Symbols::new();
    let program = parse_program(&syms, &src).unwrap();
    let t0 = std::time::Instant::now();
    let result = solve(&syms, &program, &[], &SolverConfig::default()).unwrap();
    assert_eq!(result.answer_sets.len(), 1);
    assert_eq!(result.answer_sets[0].len(), 2000 + 999);
    assert!(t0.elapsed().as_secs() < 5, "took {:?}", t0.elapsed());
}
