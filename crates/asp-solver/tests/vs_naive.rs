//! Property test: on randomly generated *stratified* programs, grounding +
//! solving must produce exactly the perfect model computed by an independent
//! naive evaluator (layer-by-layer fixpoint with brute-force substitution).

use asp_core::{FastSet, GroundAtom, GroundTerm, Program, Rule, Sym, Symbols, Term};
use asp_parser::parse_program;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A random stratified program over unary predicates `l{layer}p{idx}` and a
/// small constant domain. Layer-0 predicates are EDB; a rule for a layer-i
/// head uses positive bodies from layers < i (or same layer for recursion)
/// and negative bodies strictly below i.
#[derive(Clone, Debug)]
struct ProgramSpec {
    /// facts: (pred idx in layer 0, constant idx)
    facts: Vec<(u8, u8)>,
    /// rules: (head layer 1.., head idx, pos (layer, idx) list, neg (layer, idx) list, same_layer_pos)
    rules: Vec<RuleSpec>,
}

#[derive(Clone, Debug)]
struct RuleSpec {
    head_layer: u8,
    head_idx: u8,
    pos: Vec<(u8, u8)>,
    neg: Vec<(u8, u8)>,
}

const LAYERS: u8 = 3;
const PREDS_PER_LAYER: u8 = 2;
const CONSTS: u8 = 3;

fn spec() -> impl Strategy<Value = ProgramSpec> {
    let fact = (0..PREDS_PER_LAYER, 0..CONSTS);
    let rule = (1u8..LAYERS, 0..PREDS_PER_LAYER).prop_flat_map(|(hl, hi)| {
        let pos_src = (0..hl + 1, 0..PREDS_PER_LAYER)
            .prop_filter("positive bodies at most head layer", move |(l, _)| *l <= hl);
        let neg_src = (0..hl, 0..PREDS_PER_LAYER);
        (
            Just(hl),
            Just(hi),
            prop::collection::vec(pos_src, 1..3),
            prop::collection::vec(neg_src, 0..2),
        )
            .prop_map(|(head_layer, head_idx, pos, neg)| RuleSpec {
                head_layer,
                head_idx,
                pos,
                neg,
            })
    });
    (prop::collection::vec(fact, 1..8), prop::collection::vec(rule, 1..6))
        .prop_map(|(facts, rules)| ProgramSpec { facts, rules })
}

fn pred_name(layer: u8, idx: u8) -> String {
    format!("l{layer}p{idx}")
}

fn build_source(spec: &ProgramSpec) -> String {
    let mut out = String::new();
    for (p, c) in &spec.facts {
        out.push_str(&format!("{}(k{c}).\n", pred_name(0, *p)));
    }
    for r in &spec.rules {
        let mut body: Vec<String> =
            r.pos.iter().map(|(l, i)| format!("{}(X)", pred_name(*l, *i))).collect();
        body.extend(r.neg.iter().map(|(l, i)| format!("not {}(X)", pred_name(*l, *i))));
        out.push_str(&format!(
            "{}(X) :- {}.\n",
            pred_name(r.head_layer, r.head_idx),
            body.join(", ")
        ));
    }
    out
}

/// Perfect-model evaluation: process layers bottom-up; within a layer,
/// fixpoint over its rules with brute-force constant substitution.
fn naive_perfect_model(spec: &ProgramSpec) -> BTreeSet<(String, u8)> {
    let mut model: BTreeSet<(String, u8)> = BTreeSet::new();
    for (p, c) in &spec.facts {
        model.insert((pred_name(0, *p), *c));
    }
    for layer in 1..LAYERS {
        loop {
            let mut changed = false;
            for r in &spec.rules {
                if r.head_layer != layer {
                    continue;
                }
                for c in 0..CONSTS {
                    let pos_ok = r.pos.iter().all(|(l, i)| model.contains(&(pred_name(*l, *i), c)));
                    let neg_ok =
                        r.neg.iter().all(|(l, i)| !model.contains(&(pred_name(*l, *i), c)));
                    if pos_ok && neg_ok {
                        changed |= model.insert((pred_name(layer, r.head_idx), c));
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
    model
}

fn solve_model(syms: &Symbols, program: &Program) -> BTreeSet<(String, u8)> {
    let result =
        asp_solver::solve(syms, program, &[], &asp_solver::SolverConfig::default()).unwrap();
    assert_eq!(result.answer_sets.len(), 1, "stratified programs have exactly one answer set");
    result.answer_sets[0]
        .atoms()
        .iter()
        .map(|a| {
            let name = syms.resolve(a.pred).to_string();
            let c = match &a.args[0] {
                GroundTerm::Const(s) => {
                    syms.resolve(*s).strip_prefix('k').unwrap().parse::<u8>().unwrap()
                }
                other => panic!("unexpected arg {other:?}"),
            };
            (name, c)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn grounder_plus_solver_matches_naive_stratified_evaluation(s in spec()) {
        let syms = Symbols::new();
        let src = build_source(&s);
        let program = parse_program(&syms, &src).unwrap();
        let expected = naive_perfect_model(&s);
        let actual = solve_model(&syms, &program);
        prop_assert_eq!(actual, expected, "program:\n{}", src);
    }

    /// The possible-set over-approximation: every atom of the perfect model
    /// must appear in the ground program's atom table.
    #[test]
    fn possible_atoms_cover_the_perfect_model(s in spec()) {
        let syms = Symbols::new();
        let src = build_source(&s);
        let program = parse_program(&syms, &src).unwrap();
        let gp = asp_grounder::ground_program(&syms, &program, &[]).unwrap();
        let interned: FastSet<&GroundAtom> = gp.atoms.iter().map(|(_, a)| a).collect();
        for (name, c) in naive_perfect_model(&s) {
            let atom = GroundAtom::new(
                syms.intern(&name),
                vec![GroundTerm::Const(syms.intern(&format!("k{c}")))],
            );
            prop_assert!(interned.contains(&atom), "missing {name}(k{c})\n{}", src);
        }
    }
}

/// Sanity: the generators above actually exercise negation and recursion.
#[test]
fn generated_space_contains_negation() {
    let s = ProgramSpec {
        facts: vec![(0, 0), (1, 1)],
        rules: vec![
            RuleSpec { head_layer: 1, head_idx: 0, pos: vec![(0, 0)], neg: vec![(0, 1)] },
            RuleSpec { head_layer: 2, head_idx: 1, pos: vec![(1, 0), (2, 1)], neg: vec![] },
        ],
    };
    let syms = Symbols::new();
    let src = build_source(&s);
    let program = parse_program(&syms, &src).unwrap();
    assert_eq!(solve_model(&syms, &program), naive_perfect_model(&s));
}

/// Use of `Sym` in the signature keeps the import exercised.
#[allow(dead_code)]
fn _sym_is_used(_: Sym) {}

#[allow(dead_code)]
fn _rule_is_used(_: Rule, _: Term) {}
