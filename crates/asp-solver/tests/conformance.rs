//! Conformance of the CDCL solver against a brute-force stable-model
//! enumerator on randomly generated ground normal programs.

use asp_core::{GroundAtom, GroundProgram, GroundRule, GroundTerm, Symbols};
use asp_solver::{solve_ground, SolverConfig};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Brute force: S is a stable model of a normal program iff S is the least
/// model of the reduct P^S and no constraint fires under S.
fn brute_force_stable_models(gp: &GroundProgram) -> Vec<BTreeSet<u32>> {
    let n = gp.atoms.len();
    assert!(n <= 16, "brute force explodes past 16 atoms");
    let mut models = Vec::new();
    'subsets: for mask in 0u32..(1 << n) {
        let in_s = |a: u32| mask & (1 << a) != 0;
        // Constraints must not fire.
        for r in &gp.rules {
            if r.head.is_empty()
                && r.pos.iter().all(|p| in_s(p.0))
                && r.neg.iter().all(|q| !in_s(q.0))
            {
                continue 'subsets;
            }
        }
        // Least model of the reduct.
        let mut lm = vec![false; n];
        loop {
            let mut changed = false;
            for r in &gp.rules {
                if r.head.len() != 1 {
                    continue;
                }
                if r.neg.iter().all(|q| !in_s(q.0))
                    && r.pos.iter().all(|p| lm[p.idx()])
                    && !lm[r.head[0].idx()]
                {
                    lm[r.head[0].idx()] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let lm_mask: u32 = lm.iter().enumerate().map(|(i, &b)| if b { 1 << i } else { 0 }).sum();
        if lm_mask == mask {
            models.push((0..n as u32).filter(|&a| in_s(a)).collect());
        }
    }
    models
}

fn solver_models(syms: &Symbols, gp: &GroundProgram) -> Vec<BTreeSet<u32>> {
    let res = solve_ground(syms, gp, &SolverConfig::default()).unwrap();
    let mut out: Vec<BTreeSet<u32>> = res
        .answer_sets
        .iter()
        .map(|ans| {
            ans.atoms()
                .iter()
                .map(|a| gp.atoms.get(a).expect("answer atom must be interned").0)
                .collect()
        })
        .collect();
    out.sort();
    out
}

/// One generated rule: `(head_or_none, pos, neg)` over atom indices.
type RuleTriple = (Option<u32>, Vec<u32>, Vec<u32>);

/// Builds a ground program over `n_atoms` 0-ary-ish atoms from rule specs
/// `(head_or_none, pos, neg)`.
fn build(n_atoms: u32, rules: &[RuleTriple]) -> (Symbols, GroundProgram) {
    let syms = Symbols::new();
    let mut gp = GroundProgram::default();
    for i in 0..n_atoms {
        gp.atoms.intern(GroundAtom::new(syms.intern(&format!("a{i}")), vec![GroundTerm::Int(0)]));
    }
    for (head, pos, neg) in rules {
        gp.rules.push(GroundRule {
            head: head.map(asp_core::AtomId).into_iter().collect(),
            pos: pos.iter().map(|&p| asp_core::AtomId(p)).collect(),
            neg: neg.iter().map(|&q| asp_core::AtomId(q)).collect(),
        });
    }
    (syms, gp)
}

#[test]
fn brute_force_agrees_on_even_loop() {
    // a0 :- not a1. a1 :- not a0.
    let (syms, gp) = build(2, &[(Some(0), vec![], vec![1]), (Some(1), vec![], vec![0])]);
    let mut expected = brute_force_stable_models(&gp);
    expected.sort();
    assert_eq!(expected.len(), 2);
    assert_eq!(solver_models(&syms, &gp), expected);
}

#[test]
fn brute_force_agrees_on_positive_loop() {
    // a0 :- a1. a1 :- a0. Only the empty model.
    let (syms, gp) = build(2, &[(Some(0), vec![1], vec![]), (Some(1), vec![0], vec![])]);
    let mut expected = brute_force_stable_models(&gp);
    expected.sort();
    assert_eq!(expected, vec![BTreeSet::new()]);
    assert_eq!(solver_models(&syms, &gp), expected);
}

#[test]
fn brute_force_agrees_on_odd_loop() {
    let (syms, gp) = build(1, &[(Some(0), vec![], vec![0])]);
    assert!(brute_force_stable_models(&gp).is_empty());
    assert!(solver_models(&syms, &gp).is_empty());
}

/// Strategy: random normal programs over up to 5 atoms with up to 7 rules,
/// each rule having up to 2 positive and 2 negative body literals, plus
/// occasional constraints — a space dense in loops, choices and conflicts.
fn program_strategy() -> impl Strategy<Value = (u32, Vec<RuleTriple>)> {
    let rule = (
        prop::option::weighted(0.9, 0u32..5),
        prop::collection::vec(0u32..5, 0..=2),
        prop::collection::vec(0u32..5, 0..=2),
    );
    (Just(5u32), prop::collection::vec(rule, 1..=7))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn solver_matches_brute_force((n_atoms, rules) in program_strategy()) {
        let (syms, gp) = build(n_atoms, &rules);
        let mut expected = brute_force_stable_models(&gp);
        expected.sort();
        let actual = solver_models(&syms, &gp);
        prop_assert_eq!(actual, expected);
    }

    #[test]
    fn facts_always_appear_in_every_model((n_atoms, rules) in program_strategy()) {
        let (syms, mut gp) = build(n_atoms, &rules);
        // Make atom 0 a fact; every model must contain it (or be absent if
        // the program is unsat).
        gp.rules.push(GroundRule { head: vec![asp_core::AtomId(0)], pos: vec![], neg: vec![] });
        for m in solver_models(&syms, &gp) {
            prop_assert!(m.contains(&0));
        }
    }
}
