//! Indexed max-heap over variable activities (the MiniSat order heap).

use crate::lit::Var;

/// Binary max-heap keyed by externally stored activities, with an index map
/// for `decrease`/`contains` in O(1) and sift operations in O(log n).
#[derive(Debug, Default)]
pub struct VarOrder {
    heap: Vec<Var>,
    /// position[v] = index in `heap`, or usize::MAX when absent.
    position: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarOrder {
    /// An empty order over `n` variables.
    pub fn new(n: usize) -> Self {
        VarOrder { heap: Vec::with_capacity(n), position: vec![ABSENT; n] }
    }

    /// Number of queued variables.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no variable is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True when `v` is queued.
    pub fn contains(&self, v: Var) -> bool {
        self.position[v.idx()] != ABSENT
    }

    /// Inserts `v` (no-op when present).
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.position[v.idx()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Pops the variable with maximal activity.
    pub fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        self.position[top.idx()] = ABSENT;
        let last = self.heap.pop().expect("heap non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last.idx()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores heap order after `v`'s activity increased.
    pub fn bumped(&mut self, v: Var, activity: &[f64]) {
        if let Some(&pos) = self.position.get(v.idx()) {
            if pos != ABSENT {
                self.sift_up(pos, activity);
            }
        }
    }

    /// Rebuilds the heap (used after global activity rescaling, which
    /// preserves order, so this is rarely needed — kept for completeness).
    pub fn rebuild(&mut self, activity: &[f64]) {
        let vars: Vec<Var> = self.heap.drain(..).collect();
        for p in self.position.iter_mut() {
            *p = ABSENT;
        }
        for v in vars {
            self.insert(v, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i].idx()] <= activity[self.heap[parent].idx()] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && activity[self.heap[l].idx()] > activity[self.heap[best].idx()]
            {
                best = l;
            }
            if r < self.heap.len() && activity[self.heap[r].idx()] > activity[self.heap[best].idx()]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.position[self.heap[a].idx()] = a;
        self.position[self.heap[b].idx()] = b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![1.0, 5.0, 3.0, 4.0, 2.0];
        let mut h = VarOrder::new(5);
        for i in 0..5 {
            h.insert(Var(i), &activity);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop(&activity)).map(|v| v.0).collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0, 2.0];
        let mut h = VarOrder::new(2);
        h.insert(Var(0), &activity);
        h.insert(Var(0), &activity);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn bumped_restores_order() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = VarOrder::new(3);
        for i in 0..3 {
            h.insert(Var(i), &activity);
        }
        activity[0] = 10.0;
        h.bumped(Var(0), &activity);
        assert_eq!(h.pop(&activity), Some(Var(0)));
    }

    #[test]
    fn contains_tracks_membership() {
        let activity = vec![1.0];
        let mut h = VarOrder::new(1);
        assert!(!h.contains(Var(0)));
        h.insert(Var(0), &activity);
        assert!(h.contains(Var(0)));
        h.pop(&activity);
        assert!(!h.contains(Var(0)));
    }
}
