//! Clause storage with two-watched-literal scheme support.

use crate::lit::Lit;

/// Index of a clause in the [`ClauseDb`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ClauseRef(pub u32);

impl ClauseRef {
    /// Sentinel for "no reason" (decision or level-0 assignment).
    pub const NONE: ClauseRef = ClauseRef(u32::MAX);

    /// The index as usize.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A clause; `lits[0]` and `lits[1]` are the watched literals.
#[derive(Debug)]
pub struct Clause {
    /// The literals.
    pub lits: Vec<Lit>,
    /// True for learnt (conflict/loop/blocking) clauses, which are eligible
    /// for deletion.
    pub learnt: bool,
    /// Literal block distance at learning time (deletion heuristic).
    pub lbd: u32,
    /// Tombstone flag set by clause-DB reduction.
    pub deleted: bool,
}

/// Watcher entry: the clause plus a "blocker" literal that often decides
/// satisfaction without touching the clause memory.
#[derive(Clone, Copy, Debug)]
pub struct Watcher {
    /// Watched clause.
    pub clause: ClauseRef,
    /// A literal whose truth implies the clause is satisfied.
    pub blocker: Lit,
}

/// Arena of clauses plus per-literal watcher lists.
#[derive(Debug, Default)]
pub struct ClauseDb {
    clauses: Vec<Clause>,
    /// watches[lit.code()] = clauses currently watching `lit`.
    pub watches: Vec<Vec<Watcher>>,
    /// Number of live learnt clauses.
    pub learnt_count: usize,
}

impl ClauseDb {
    /// An empty database sized for `n_vars` variables.
    pub fn new(n_vars: usize) -> Self {
        ClauseDb { clauses: Vec::new(), watches: vec![Vec::new(); 2 * n_vars], learnt_count: 0 }
    }

    /// Grows watcher lists for newly added variables.
    pub fn grow(&mut self, n_vars: usize) {
        self.watches.resize(2 * n_vars, Vec::new());
    }

    /// The clause behind `r`.
    #[inline]
    pub fn clause(&self, r: ClauseRef) -> &Clause {
        &self.clauses[r.idx()]
    }

    /// Mutable access to the clause behind `r`.
    #[inline]
    pub fn clause_mut(&mut self, r: ClauseRef) -> &mut Clause {
        &mut self.clauses[r.idx()]
    }

    /// Number of clauses (including tombstones).
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// True when no clause is stored.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Adds a clause of ≥2 literals and registers the watches on the first
    /// two. The caller must have placed suitable literals at positions 0/1.
    pub fn add(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2, "unit/empty clauses are handled by the trail");
        let r = ClauseRef(u32::try_from(self.clauses.len()).expect("clause DB overflow"));
        self.watches[lits[0].negate().code()].push(Watcher { clause: r, blocker: lits[1] });
        self.watches[lits[1].negate().code()].push(Watcher { clause: r, blocker: lits[0] });
        if learnt {
            self.learnt_count += 1;
        }
        self.clauses.push(Clause { lits, learnt, lbd, deleted: false });
        r
    }

    /// Marks `r` deleted; watcher entries are purged by [`ClauseDb::rebuild_watches`].
    pub fn delete(&mut self, r: ClauseRef) {
        let c = &mut self.clauses[r.idx()];
        if !c.deleted {
            c.deleted = true;
            if c.learnt {
                self.learnt_count -= 1;
            }
        }
    }

    /// Rebuilds all watcher lists from live clauses (after a reduction).
    pub fn rebuild_watches(&mut self) {
        for w in self.watches.iter_mut() {
            w.clear();
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if c.deleted {
                continue;
            }
            let r = ClauseRef(i as u32);
            self.watches[c.lits[0].negate().code()].push(Watcher { clause: r, blocker: c.lits[1] });
            self.watches[c.lits[1].negate().code()].push(Watcher { clause: r, blocker: c.lits[0] });
        }
    }

    /// Live learnt clause refs, for the reduction policy.
    pub fn learnt_refs(&self) -> Vec<ClauseRef> {
        self.clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted)
            .map(|(i, _)| ClauseRef(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::Var;

    #[test]
    fn add_registers_watches() {
        let mut db = ClauseDb::new(3);
        let lits = vec![Lit::pos(Var(0)), Lit::neg(Var(1)), Lit::pos(Var(2))];
        let r = db.add(lits, false, 0);
        // Watchers live on the negations of the first two literals.
        assert_eq!(db.watches[Lit::neg(Var(0)).code()].len(), 1);
        assert_eq!(db.watches[Lit::pos(Var(1)).code()].len(), 1);
        assert_eq!(db.watches[Lit::neg(Var(2)).code()].len(), 0);
        assert_eq!(db.clause(r).lits.len(), 3);
    }

    #[test]
    fn delete_and_rebuild() {
        let mut db = ClauseDb::new(2);
        let a = db.add(vec![Lit::pos(Var(0)), Lit::pos(Var(1))], true, 2);
        let _b = db.add(vec![Lit::neg(Var(0)), Lit::neg(Var(1))], true, 2);
        assert_eq!(db.learnt_count, 2);
        db.delete(a);
        assert_eq!(db.learnt_count, 1);
        db.rebuild_watches();
        let total: usize = db.watches.iter().map(Vec::len).sum();
        assert_eq!(total, 2, "only the live clause is watched");
    }

    #[test]
    fn learnt_refs_skips_tombstones() {
        let mut db = ClauseDb::new(2);
        let a = db.add(vec![Lit::pos(Var(0)), Lit::pos(Var(1))], true, 2);
        db.add(vec![Lit::neg(Var(0)), Lit::pos(Var(1))], false, 0);
        db.delete(a);
        assert!(db.learnt_refs().is_empty());
    }
}
