//! Translation of a ground program into completion clauses plus the shifted
//! normal-rule list used by the stability checker.
//!
//! Disjunctive heads are *shifted* (`a | b :- B` becomes `a :- B, not b` and
//! `b :- B, not a`), which is sound and complete exactly for head-cycle-free
//! programs; non-HCF programs are rejected with a clear error, as documented
//! in DESIGN.md.

use crate::lit::{Lit, Var};
use asp_core::{AspError, AtomId, FastMap, GroundProgram, Symbols};
use sr_graph::{scc_ids, DiGraph};

/// A shifted normal rule over solver variables.
#[derive(Clone, Debug)]
pub struct NormRule {
    /// Head atom variable.
    pub head: Var,
    /// Positive body atom variables.
    pub pos: Vec<Var>,
    /// Negative body atom variables (default negation).
    pub neg: Vec<Var>,
    /// The auxiliary body variable for this rule's body.
    pub body_var: Var,
}

/// Result of translating a [`GroundProgram`].
#[derive(Debug)]
pub struct Translation {
    /// Number of atom variables (`Var(i)` ⇔ `AtomId(i)` for `i < n_atoms`).
    pub n_atoms: usize,
    /// Total variables including body auxiliaries.
    pub n_vars: usize,
    /// Completion clauses (may contain units).
    pub clauses: Vec<Vec<Lit>>,
    /// Shifted normal rules for unfounded-set checking.
    pub rules: Vec<NormRule>,
    /// True when the positive dependency graph is acyclic — completion models
    /// are then exactly the stable models and no stability check is needed.
    pub tight: bool,
    /// True when grounding already derived a contradiction.
    pub trivially_unsat: bool,
}

/// Translates `gp`; fails on non-head-cycle-free disjunction.
pub fn translate(syms: &Symbols, gp: &GroundProgram) -> Result<Translation, AspError> {
    let n_atoms = gp.atoms.len();

    check_head_cycle_free(syms, gp)?;

    // Shift disjunctive rules into normal rules.
    struct Shifted {
        head: Option<AtomId>,
        pos: Vec<AtomId>,
        neg: Vec<AtomId>,
    }
    let mut shifted: Vec<Shifted> = Vec::with_capacity(gp.rules.len());
    let mut trivially_unsat = false;
    for rule in &gp.rules {
        match rule.head.len() {
            0 => {
                if rule.pos.is_empty() && rule.neg.is_empty() {
                    trivially_unsat = true;
                }
                shifted.push(Shifted { head: None, pos: rule.pos.clone(), neg: rule.neg.clone() });
            }
            1 => shifted.push(Shifted {
                head: Some(rule.head[0]),
                pos: rule.pos.clone(),
                neg: rule.neg.clone(),
            }),
            _ => {
                for (i, &h) in rule.head.iter().enumerate() {
                    let mut neg = rule.neg.clone();
                    neg.extend(
                        rule.head.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, &a)| a),
                    );
                    shifted.push(Shifted { head: Some(h), pos: rule.pos.clone(), neg });
                }
            }
        }
    }

    // Canonicalize bodies and allocate body variables (deduplicated).
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut rules: Vec<NormRule> = Vec::new();
    let mut body_vars: FastMap<(Vec<AtomId>, Vec<AtomId>), Var> = FastMap::default();
    let mut next_var = n_atoms as u32;
    let mut bodies_of: Vec<Vec<Var>> = vec![Vec::new(); n_atoms];
    let atom_lit = |a: AtomId| Lit::pos(Var(a.0));

    for s in &mut shifted {
        s.pos.sort_unstable();
        s.pos.dedup();
        s.neg.sort_unstable();
        s.neg.dedup();
        // A body containing both `a` and `not a` can never fire.
        if s.pos.iter().any(|p| s.neg.binary_search(p).is_ok()) {
            continue;
        }
        match s.head {
            None => {
                // Constraint: direct clause ¬p1 ∨ ... ∨ q1 ∨ ...
                let mut clause: Vec<Lit> = s.pos.iter().map(|&a| atom_lit(a).negate()).collect();
                clause.extend(s.neg.iter().map(|&a| atom_lit(a)));
                clauses.push(clause);
            }
            Some(h) => {
                let key = (s.pos.clone(), s.neg.clone());
                let body_var = *body_vars.entry(key).or_insert_with(|| {
                    let v = Var(next_var);
                    next_var += 1;
                    // Body definition clauses: b ↔ conjunction.
                    let b = Lit::pos(v);
                    let mut long: Vec<Lit> = vec![b];
                    for &p in &s.pos {
                        clauses.push(vec![b.negate(), atom_lit(p)]);
                        long.push(atom_lit(p).negate());
                    }
                    for &q in &s.neg {
                        clauses.push(vec![b.negate(), atom_lit(q).negate()]);
                        long.push(atom_lit(q));
                    }
                    clauses.push(long);
                    v
                });
                // Body implies head.
                clauses.push(vec![Lit::neg(body_var), atom_lit(h)]);
                let hv = Var(h.0);
                bodies_of[hv.idx()].push(body_var);
                rules.push(NormRule {
                    head: hv,
                    pos: s.pos.iter().map(|a| Var(a.0)).collect(),
                    neg: s.neg.iter().map(|a| Var(a.0)).collect(),
                    body_var,
                });
            }
        }
    }

    // Support (completion) clauses: atom → one of its bodies.
    for (i, bodies) in bodies_of.iter().enumerate() {
        let a = Lit::pos(Var(i as u32));
        let mut clause = Vec::with_capacity(bodies.len() + 1);
        clause.push(a.negate());
        clause.extend(bodies.iter().map(|&b| Lit::pos(b)));
        clauses.push(clause);
    }

    let tight = is_tight(&rules, n_atoms);

    Ok(Translation { n_atoms, n_vars: next_var as usize, clauses, rules, tight, trivially_unsat })
}

/// Rejects programs where two atoms of one disjunctive head share an SCC of
/// the positive dependency graph.
fn check_head_cycle_free(syms: &Symbols, gp: &GroundProgram) -> Result<(), AspError> {
    if !gp.rules.iter().any(|r| r.head.len() > 1) {
        return Ok(());
    }
    let mut g = DiGraph::new(gp.atoms.len());
    for rule in &gp.rules {
        for &h in &rule.head {
            for &p in &rule.pos {
                g.add_edge(p.0 as usize, h.0 as usize);
            }
        }
    }
    let scc = scc_ids(&g);
    for rule in &gp.rules {
        if rule.head.len() < 2 {
            continue;
        }
        for i in 0..rule.head.len() {
            for j in (i + 1)..rule.head.len() {
                if scc[rule.head[i].idx()] == scc[rule.head[j].idx()] {
                    return Err(AspError::NotHeadCycleFree {
                        detail: format!(
                            "head atoms {} and {} are positively interdependent",
                            gp.atoms.resolve(rule.head[i]).display(syms),
                            gp.atoms.resolve(rule.head[j]).display(syms),
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Tightness: no cycle in the positive atom dependency graph.
fn is_tight(rules: &[NormRule], n_atoms: usize) -> bool {
    let mut g = DiGraph::new(n_atoms);
    for r in rules {
        for &p in &r.pos {
            if p == r.head {
                return false; // self-loop
            }
            g.add_edge(p.idx(), r.head.idx());
        }
    }
    let ids = scc_ids(&g);
    let max = ids.iter().copied().max().map_or(0, |m| m + 1);
    max == n_atoms
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp_core::{GroundAtom, GroundRule, GroundTerm};

    fn program(rules: Vec<(Vec<&str>, Vec<&str>, Vec<&str>)>) -> (Symbols, GroundProgram) {
        let syms = Symbols::new();
        let mut gp = GroundProgram::default();
        let id = |gp: &mut GroundProgram, name: &str| {
            gp.atoms.intern(GroundAtom::new(syms.intern(name), vec![GroundTerm::Int(0)]))
        };
        for (head, pos, neg) in rules {
            let head = head.into_iter().map(|n| id(&mut gp, n)).collect();
            let pos = pos.into_iter().map(|n| id(&mut gp, n)).collect();
            let neg = neg.into_iter().map(|n| id(&mut gp, n)).collect();
            gp.rules.push(GroundRule { head, pos, neg });
        }
        (syms, gp)
    }

    #[test]
    fn fact_produces_unit_support() {
        let (syms, gp) = program(vec![(vec!["a"], vec![], vec![])]);
        let t = translate(&syms, &gp).unwrap();
        assert_eq!(t.n_atoms, 1);
        assert_eq!(t.rules.len(), 1);
        assert!(t.tight);
        // Unit clause for the empty body variable must exist.
        assert!(t.clauses.iter().any(|c| c.len() == 1));
    }

    #[test]
    fn bodies_are_deduplicated() {
        let (syms, gp) =
            program(vec![(vec!["a"], vec!["c"], vec![]), (vec!["b"], vec!["c"], vec![])]);
        let t = translate(&syms, &gp).unwrap();
        // atoms a, b, c plus exactly ONE body variable.
        assert_eq!(t.n_vars, t.n_atoms + 1);
        assert_eq!(t.rules[0].body_var, t.rules[1].body_var);
    }

    #[test]
    fn self_blocking_body_is_dropped() {
        let (syms, gp) = program(vec![(vec!["a"], vec!["b"], vec!["b"])]);
        let t = translate(&syms, &gp).unwrap();
        assert!(t.rules.is_empty());
        // a has no support: ¬a unit.
        assert!(t.clauses.iter().any(|c| c == &vec![Lit::neg(Var(0))]));
    }

    #[test]
    fn positive_loop_is_not_tight() {
        let (syms, gp) =
            program(vec![(vec!["a"], vec!["b"], vec![]), (vec!["b"], vec!["a"], vec![])]);
        let t = translate(&syms, &gp).unwrap();
        assert!(!t.tight);
    }

    #[test]
    fn negative_loop_is_tight() {
        let (syms, gp) =
            program(vec![(vec!["a"], vec![], vec!["b"]), (vec!["b"], vec![], vec!["a"])]);
        let t = translate(&syms, &gp).unwrap();
        assert!(t.tight);
    }

    #[test]
    fn shifting_produces_one_rule_per_head() {
        let (syms, gp) = program(vec![(vec!["a", "b"], vec!["c"], vec![])]);
        let t = translate(&syms, &gp).unwrap();
        assert_eq!(t.rules.len(), 2);
        assert!(t.rules.iter().all(|r| r.neg.len() == 1));
    }

    #[test]
    fn head_cycles_are_rejected() {
        // a | b.  a :- b.  b :- a.  (a and b in one positive SCC)
        let (syms, gp) = program(vec![
            (vec!["a", "b"], vec![], vec![]),
            (vec!["a"], vec!["b"], vec![]),
            (vec!["b"], vec!["a"], vec![]),
        ]);
        let err = translate(&syms, &gp).unwrap_err();
        assert!(matches!(err, AspError::NotHeadCycleFree { .. }));
    }

    #[test]
    fn empty_constraint_is_trivially_unsat() {
        let (syms, gp) = program(vec![(vec![], vec![], vec![])]);
        let t = translate(&syms, &gp).unwrap();
        assert!(t.trivially_unsat);
    }
}
