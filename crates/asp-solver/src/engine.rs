//! The CDCL search engine: two-watched-literal propagation, 1UIP conflict
//! analysis with clause learning, VSIDS-style decision heuristic with phase
//! saving, Luby restarts and LBD-based clause-DB reduction.
//!
//! The engine is a plain SAT core; answer-set semantics (completion input,
//! stability checks, model enumeration) live in the crate facade.

use crate::clause::{ClauseDb, ClauseRef, Watcher};
use crate::heap::VarOrder;
use crate::lit::{LBool, Lit, Var};

/// Tunables for the engine. Defaults follow MiniSat-era folklore.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Activity decay factor per conflict.
    pub var_decay: f64,
    /// Conflicts per Luby restart unit.
    pub restart_base: u64,
    /// Initial learnt-clause budget before reduction kicks in.
    pub learnt_limit: usize,
    /// Growth factor of the learnt budget after each reduction.
    pub learnt_limit_growth: f64,
    /// Seed for polarity jitter; 0 disables randomization entirely, keeping
    /// the search fully deterministic.
    pub seed: u64,
    /// Probability (0..1) of choosing a random polarity at a decision.
    pub random_polarity: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            var_decay: 0.95,
            restart_base: 128,
            learnt_limit: 4000,
            learnt_limit_growth: 1.3,
            seed: 0,
            random_polarity: 0.0,
        }
    }
}

/// Search counters reported to callers.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses deleted by reductions.
    pub deleted_clauses: u64,
}

/// Outcome of [`Engine::run_until_model`].
#[derive(Debug, PartialEq, Eq)]
pub enum SearchOutcome {
    /// A total assignment satisfying all clauses was found (read it via
    /// [`Engine::value`]).
    Model,
    /// The clause set is exhausted — no (further) model exists.
    Exhausted,
}

/// The CDCL engine.
#[derive(Debug)]
pub struct Engine {
    n_vars: usize,
    values: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<ClauseRef>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    db: ClauseDb,
    activity: Vec<f64>,
    act_inc: f64,
    order: VarOrder,
    polarity: Vec<bool>,
    seen: Vec<bool>,
    cfg: EngineConfig,
    rng_state: u64,
    learnt_limit: usize,
    conflicts_since_restart: u64,
    restart_count: u64,
    /// False once the clause set is known unsatisfiable at level 0.
    ok: bool,
    /// Search statistics.
    pub stats: EngineStats,
}

impl Engine {
    /// A fresh engine over `n_vars` variables.
    pub fn new(n_vars: usize, cfg: EngineConfig) -> Self {
        let mut order = VarOrder::new(n_vars);
        let activity = vec![0.0; n_vars];
        for v in 0..n_vars {
            order.insert(Var(v as u32), &activity);
        }
        Engine {
            n_vars,
            values: vec![LBool::Undef; n_vars],
            level: vec![0; n_vars],
            reason: vec![ClauseRef::NONE; n_vars],
            trail: Vec::with_capacity(n_vars),
            trail_lim: Vec::new(),
            qhead: 0,
            db: ClauseDb::new(n_vars),
            activity,
            act_inc: 1.0,
            order,
            polarity: vec![false; n_vars],
            seen: vec![false; n_vars],
            rng_state: cfg.seed | 1,
            learnt_limit: cfg.learnt_limit,
            cfg,
            conflicts_since_restart: 0,
            restart_count: 0,
            ok: true,
            stats: EngineStats::default(),
        }
    }

    /// Current decision level.
    #[inline]
    pub fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Value of a variable.
    #[inline]
    pub fn value(&self, v: Var) -> LBool {
        self.values[v.idx()]
    }

    /// Value of a literal.
    #[inline]
    pub fn value_lit(&self, l: Lit) -> LBool {
        self.values[l.var().idx()].of_lit(l)
    }

    /// True while the clause set is not yet known unsatisfiable.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Adds a clause. Must be called at decision level 0 (the facade
    /// backtracks before adding loop/blocking clauses). Returns false when
    /// the clause set became unsatisfiable.
    pub fn add_clause(&mut self, mut lits: Vec<Lit>) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        lits.sort_unstable();
        lits.dedup();
        // Tautology / level-0 simplification.
        let mut simplified = Vec::with_capacity(lits.len());
        for (i, &l) in lits.iter().enumerate() {
            if i + 1 < lits.len() && lits[i + 1] == l.negate() {
                return true; // tautology
            }
            match self.value_lit(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop falsified literal
                LBool::Undef => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], ClauseRef::NONE);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.db.add(simplified, false, 0);
                true
            }
        }
    }

    /// Runs CDCL until a model or exhaustion. Leaves the trail at the model
    /// assignment on [`SearchOutcome::Model`].
    pub fn run_until_model(&mut self) -> SearchOutcome {
        if !self.ok {
            return SearchOutcome::Exhausted;
        }
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                self.conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SearchOutcome::Exhausted;
                }
                let (learnt, backjump) = self.analyze(confl);
                self.backtrack(backjump);
                self.learn(learnt);
                self.decay_activities();
            } else if self.trail.len() == self.n_vars {
                return SearchOutcome::Model;
            } else if self.should_restart() {
                self.restart();
            } else {
                self.maybe_reduce_db();
                self.decide();
            }
        }
    }

    /// Backtracks to `level`, undoing assignments and saving phases.
    pub fn backtrack(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let limit = self.trail_lim[target as usize];
        while self.trail.len() > limit {
            let lit = self.trail.pop().expect("trail underflow");
            let v = lit.var();
            self.polarity[v.idx()] = !lit.is_neg();
            self.values[v.idx()] = LBool::Undef;
            self.reason[v.idx()] = ClauseRef::NONE;
            self.order.insert(v, &self.activity);
        }
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    /// The literals assigned at the current trail (used for model
    /// extraction).
    pub fn trail(&self) -> &[Lit] {
        &self.trail
    }

    fn unchecked_enqueue(&mut self, lit: Lit, reason: ClauseRef) {
        debug_assert_eq!(self.value_lit(lit), LBool::Undef);
        let v = lit.var();
        self.values[v.idx()] = LBool::from_bool(!lit.is_neg());
        // Level-0 assignments never participate in conflict analysis, so
        // their reasons are dropped — this keeps clause deletion safe.
        self.reason[v.idx()] = if self.decision_level() == 0 { ClauseRef::NONE } else { reason };
        self.level[v.idx()] = self.decision_level();
        self.trail.push(lit);
    }

    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let lit = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            if let Some(confl) = self.propagate_lit(lit) {
                return Some(confl);
            }
        }
        None
    }

    fn propagate_lit(&mut self, lit: Lit) -> Option<ClauseRef> {
        // Take the watcher list to satisfy the borrow checker; entries are
        // re-pushed unless the watch moves.
        let mut watchers = std::mem::take(&mut self.db.watches[lit.code()]);
        let mut i = 0;
        let mut conflict = None;
        'watchers: while i < watchers.len() {
            let w = watchers[i];
            if self.value_lit(w.blocker) == LBool::True {
                i += 1;
                continue;
            }
            let cref = w.clause;
            if self.db.clause(cref).deleted {
                watchers.swap_remove(i);
                continue;
            }
            // Normalize: watched literal being falsified is lits[1].
            let false_lit = lit.negate();
            {
                let c = self.db.clause_mut(cref);
                if c.lits[0] == false_lit {
                    c.lits.swap(0, 1);
                }
            }
            let first = self.db.clause(cref).lits[0];
            if first != w.blocker && self.value_lit(first) == LBool::True {
                watchers[i].blocker = first;
                i += 1;
                continue;
            }
            // Look for a new literal to watch.
            let len = self.db.clause(cref).lits.len();
            for k in 2..len {
                let lk = self.db.clause(cref).lits[k];
                if self.value_lit(lk) != LBool::False {
                    let c = self.db.clause_mut(cref);
                    c.lits.swap(1, k);
                    self.db.watches[lk.negate().code()]
                        .push(Watcher { clause: cref, blocker: first });
                    watchers.swap_remove(i);
                    continue 'watchers;
                }
            }
            // No new watch: clause is unit or conflicting.
            if self.value_lit(first) == LBool::False {
                conflict = Some(cref);
                self.qhead = self.trail.len();
                break;
            }
            self.unchecked_enqueue(first, cref);
            i += 1;
        }
        // Put back the remaining watchers (plus any we did not visit after a
        // conflict).
        let slot = &mut self.db.watches[lit.code()];
        if slot.is_empty() {
            *slot = watchers;
        } else {
            // propagate_lit can be re-entered for the same literal only via
            // enqueue during this call; merge conservatively.
            slot.extend(watchers);
        }
        conflict
    }

    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut idx = self.trail.len();
        let mut cref = confl;
        let current = self.decision_level();

        loop {
            let clause_lits: Vec<Lit> = self.db.clause(cref).lits.clone();
            for &q in clause_lits.iter() {
                if Some(q) == p {
                    continue;
                }
                let v = q.var();
                if !self.seen[v.idx()] && self.level[v.idx()] > 0 {
                    self.seen[v.idx()] = true;
                    self.bump_activity(v);
                    if self.level[v.idx()] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to resolve on.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().idx()] {
                    break;
                }
            }
            let lit = self.trail[idx];
            p = Some(lit);
            self.seen[lit.var().idx()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            cref = self.reason[lit.var().idx()];
            debug_assert_ne!(cref, ClauseRef::NONE, "non-UIP literal must have a reason");
        }
        learnt[0] = p.expect("analyze found the UIP").negate();

        // Conflict-clause minimization: drop literals implied by the rest.
        let learnt = self.minimize(learnt);

        // Clear seen flags for the kept literals.
        for &l in &learnt {
            self.seen[l.var().idx()] = false;
        }

        let backjump = if learnt.len() == 1 {
            0
        } else {
            // Move the highest-level non-UIP literal to position 1.
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().idx()] > self.level[learnt[max_i].var().idx()] {
                    max_i = i;
                }
            }
            let mut learnt = learnt;
            learnt.swap(1, max_i);
            let bj = self.level[learnt[1].var().idx()];
            return (learnt, bj);
        };
        (learnt, backjump)
    }

    /// Local minimization: a literal is redundant when every literal of its
    /// reason clause is already seen (self-subsumption).
    fn minimize(&mut self, learnt: Vec<Lit>) -> Vec<Lit> {
        for &l in &learnt {
            self.seen[l.var().idx()] = true;
        }
        let mut kept: Vec<Lit> = Vec::with_capacity(learnt.len());
        for (i, &l) in learnt.iter().enumerate() {
            if i == 0 {
                kept.push(l);
                continue;
            }
            let r = self.reason[l.var().idx()];
            if r == ClauseRef::NONE {
                kept.push(l);
                continue;
            }
            let redundant = self.db.clause(r).lits.iter().all(|&q| {
                q == l.negate() || self.seen[q.var().idx()] || self.level[q.var().idx()] == 0
            });
            if !redundant {
                kept.push(l);
            } else {
                self.seen[l.var().idx()] = false;
            }
        }
        kept
    }

    fn learn(&mut self, learnt: Vec<Lit>) {
        let asserting = learnt[0];
        if learnt.len() == 1 {
            self.unchecked_enqueue(asserting, ClauseRef::NONE);
            return;
        }
        let lbd = self.compute_lbd(&learnt);
        let cref = self.db.add(learnt, true, lbd);
        self.unchecked_enqueue(asserting, cref);
    }

    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var().idx()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn decide(&mut self) {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.value(v) == LBool::Undef {
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let mut negative = !self.polarity[v.idx()];
                if self.cfg.random_polarity > 0.0 && self.next_f64() < self.cfg.random_polarity {
                    negative = self.next_f64() < 0.5;
                }
                self.unchecked_enqueue(Lit::new(v, negative), ClauseRef::NONE);
                return;
            }
        }
        unreachable!("decide called with all variables assigned");
    }

    fn bump_activity(&mut self, v: Var) {
        self.activity[v.idx()] += self.act_inc;
        if self.activity[v.idx()] > 1e100 {
            for a in self.activity.iter_mut() {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
        self.order.bumped(v, &self.activity);
    }

    fn decay_activities(&mut self) {
        self.act_inc /= self.cfg.var_decay;
    }

    fn should_restart(&self) -> bool {
        self.conflicts_since_restart >= luby(self.restart_count + 1) * self.cfg.restart_base
    }

    fn restart(&mut self) {
        self.restart_count += 1;
        self.conflicts_since_restart = 0;
        self.stats.restarts += 1;
        self.backtrack(0);
    }

    fn maybe_reduce_db(&mut self) {
        if self.db.learnt_count <= self.learnt_limit || self.decision_level() != 0 {
            return;
        }
        let mut refs = self.db.learnt_refs();
        refs.sort_by_key(|&r| std::cmp::Reverse(self.db.clause(r).lbd));
        let to_delete = refs.len() / 2;
        for &r in refs.iter().take(to_delete) {
            if self.db.clause(r).lbd <= 2 {
                continue; // glue clauses are kept unconditionally
            }
            self.db.delete(r);
            self.stats.deleted_clauses += 1;
        }
        self.db.rebuild_watches();
        self.learnt_limit = (self.learnt_limit as f64 * self.cfg.learnt_limit_growth) as usize;
    }

    fn next_f64(&mut self) -> f64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The Luby sequence (1,1,2,1,1,2,4,...).
fn luby(mut i: u64) -> u64 {
    loop {
        let k = 64 - i.leading_zeros() as u64;
        if i == (1 << k) - 1 {
            return 1 << (k - 1);
        }
        i -= (1 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32, neg: bool) -> Lit {
        Lit::new(Var(v), neg)
    }

    #[test]
    fn luby_sequence() {
        let seq: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn simple_sat() {
        let mut e = Engine::new(2, EngineConfig::default());
        assert!(e.add_clause(vec![lit(0, false), lit(1, false)]));
        assert!(e.add_clause(vec![lit(0, true), lit(1, false)]));
        assert_eq!(e.run_until_model(), SearchOutcome::Model);
        assert_eq!(e.value(Var(1)), LBool::True);
    }

    #[test]
    fn simple_unsat() {
        let mut e = Engine::new(1, EngineConfig::default());
        assert!(e.add_clause(vec![lit(0, false)]));
        assert!(!e.add_clause(vec![lit(0, true)]));
        assert_eq!(e.run_until_model(), SearchOutcome::Exhausted);
    }

    #[test]
    fn unsat_needs_search() {
        // (a|b) (a|!b) (!a|b) (!a|!b)
        let mut e = Engine::new(2, EngineConfig::default());
        for (s0, s1) in [(false, false), (false, true), (true, false), (true, true)] {
            assert!(e.add_clause(vec![lit(0, s0), lit(1, s1)]));
        }
        assert_eq!(e.run_until_model(), SearchOutcome::Exhausted);
    }

    #[test]
    fn enumeration_via_blocking_clauses() {
        // One free variable: two models.
        let mut e = Engine::new(1, EngineConfig::default());
        assert_eq!(e.run_until_model(), SearchOutcome::Model);
        let first = e.value(Var(0));
        let block = if first == LBool::True { lit(0, true) } else { lit(0, false) };
        e.backtrack(0);
        assert!(e.add_clause(vec![block]));
        assert_eq!(e.run_until_model(), SearchOutcome::Model);
        let second = e.value(Var(0));
        assert_ne!(first, second);
        let block2 = if second == LBool::True { lit(0, true) } else { lit(0, false) };
        e.backtrack(0);
        assert!(!e.add_clause(vec![block2]));
        assert_eq!(e.run_until_model(), SearchOutcome::Exhausted);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p(i,j): pigeon i in hole j. Vars: 3 pigeons x 2 holes = 6.
        let var = |p: u32, h: u32| p * 2 + h;
        let mut e = Engine::new(6, EngineConfig::default());
        for p in 0..3 {
            assert!(e.add_clause(vec![lit(var(p, 0), false), lit(var(p, 1), false)]));
        }
        let mut ok = true;
        for h in 0..2 {
            for p1 in 0..3 {
                for p2 in (p1 + 1)..3 {
                    ok &= e.add_clause(vec![lit(var(p1, h), true), lit(var(p2, h), true)]);
                }
            }
        }
        assert!(ok || !e.is_ok());
        assert_eq!(e.run_until_model(), SearchOutcome::Exhausted);
    }

    #[test]
    fn chain_propagation() {
        // x0 and a chain x_{i} -> x_{i+1}: all forced true.
        let n = 50;
        let mut e = Engine::new(n, EngineConfig::default());
        assert!(e.add_clause(vec![lit(0, false)]));
        for i in 0..n as u32 - 1 {
            assert!(e.add_clause(vec![lit(i, true), lit(i + 1, false)]));
        }
        assert_eq!(e.run_until_model(), SearchOutcome::Model);
        for i in 0..n {
            assert_eq!(e.value(Var(i as u32)), LBool::True);
        }
        assert_eq!(e.stats.decisions, 0, "pure propagation needs no decisions");
    }
}

#[cfg(test)]
mod reduction_tests {
    use super::*;

    fn lit(v: u32, neg: bool) -> Lit {
        Lit::new(Var(v), neg)
    }

    /// Pigeonhole with a tiny learnt budget: clause-DB reduction must kick
    /// in without compromising the UNSAT result.
    #[test]
    fn clause_reduction_preserves_unsat() {
        let cfg = EngineConfig { learnt_limit: 4, restart_base: 8, ..Default::default() };
        // 6 pigeons into 5 holes.
        let (p, h) = (6u32, 5u32);
        let var = |pi: u32, hi: u32| pi * h + hi;
        let mut e = Engine::new((p * h) as usize, cfg);
        for pi in 0..p {
            let clause: Vec<Lit> = (0..h).map(|hi| lit(var(pi, hi), false)).collect();
            assert!(e.add_clause(clause));
        }
        for hi in 0..h {
            for p1 in 0..p {
                for p2 in (p1 + 1)..p {
                    if !e.add_clause(vec![lit(var(p1, hi), true), lit(var(p2, hi), true)]) {
                        return; // already UNSAT at level 0 — fine
                    }
                }
            }
        }
        assert_eq!(e.run_until_model(), SearchOutcome::Exhausted);
        assert!(e.stats.conflicts > 0);
    }

    /// Restarts with phase saving must not lose models.
    #[test]
    fn restarts_preserve_satisfiability() {
        let cfg = EngineConfig { restart_base: 1, ..Default::default() };
        let n = 30u32;
        let mut e = Engine::new(n as usize, cfg);
        // Chain of implications plus a satisfiable sprinkle of ternaries.
        for i in 0..n - 1 {
            assert!(e.add_clause(vec![lit(i, true), lit(i + 1, false)]));
        }
        for i in 0..n - 2 {
            assert!(e.add_clause(vec![lit(i, false), lit(i + 1, false), lit(i + 2, true)]));
        }
        assert_eq!(e.run_until_model(), SearchOutcome::Model);
    }
}
