//! Boolean variables and literals for the CDCL engine.

use std::fmt;

/// A solver variable. Variables `0..n_atoms` correspond 1:1 to ground atoms;
/// higher indices are auxiliary body variables from the Clark completion.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub u32);

impl Var {
    /// The index as usize.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable with a sign. Encoded as `var << 1 | sign` with
/// `sign = 1` for negative, so literals index watcher lists densely.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub u32);

impl Lit {
    /// Positive literal of `v`.
    #[inline]
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// Negative literal of `v`.
    #[inline]
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// Builds a literal with an explicit sign (`true` = negated).
    #[inline]
    pub fn new(v: Var, negative: bool) -> Lit {
        Lit(v.0 << 1 | negative as u32)
    }

    /// The literal's variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True for a negative literal.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    #[inline]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index for watcher lists.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.is_neg() { "¬" } else { "" }, self.var().0)
    }
}

/// Three-valued assignment state of a variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LBool {
    /// Unassigned.
    Undef,
    /// Assigned true.
    True,
    /// Assigned false.
    False,
}

impl LBool {
    /// Truth value of a literal given its variable's value.
    #[inline]
    pub fn of_lit(self, lit: Lit) -> LBool {
        match (self, lit.is_neg()) {
            (LBool::Undef, _) => LBool::Undef,
            (LBool::True, false) | (LBool::False, true) => LBool::True,
            (LBool::True, true) | (LBool::False, false) => LBool::False,
        }
    }

    /// From a boolean.
    #[inline]
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_roundtrip() {
        let v = Var(7);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(!p.is_neg());
        assert!(n.is_neg());
        assert_eq!(p.negate(), n);
        assert_eq!(n.negate(), p);
        assert_eq!(Lit::new(v, true), n);
        assert_ne!(p.code(), n.code());
    }

    #[test]
    fn lbool_of_lit() {
        let v = Var(0);
        assert_eq!(LBool::True.of_lit(Lit::pos(v)), LBool::True);
        assert_eq!(LBool::True.of_lit(Lit::neg(v)), LBool::False);
        assert_eq!(LBool::False.of_lit(Lit::neg(v)), LBool::True);
        assert_eq!(LBool::Undef.of_lit(Lit::pos(v)), LBool::Undef);
    }
}
