//! Conflict-driven stable-model solver for ground ASP programs — the
//! drop-in substitute for the Clingo 4.3 solving phase that the paper's
//! StreamRule reasoner invokes.
//!
//! Pipeline: [`translate`] builds Clark-completion clauses (shifting
//! head-cycle-free disjunction), the CDCL [`engine`] enumerates completion
//! models, and [`stability`] rejects unfounded (non-stable) models by
//! learning loop clauses on the fly. Tight programs skip the stability check
//! entirely.

#![warn(missing_docs)]

pub mod clause;
pub mod engine;
pub mod heap;
pub mod lit;
pub mod stability;
pub mod translate;

use asp_core::{AnswerSet, AspError, AtomId, GroundAtom, GroundProgram, Program, Symbols};
use asp_grounder::{is_internal_predicate, Grounder};
use engine::{Engine, EngineConfig, SearchOutcome};
use lit::{LBool, Lit, Var};

/// Solver configuration.
#[derive(Clone, Debug, Default)]
pub struct SolverConfig {
    /// Maximum number of answer sets to enumerate; 0 means all.
    pub max_models: usize,
    /// Engine tunables (seed, decay, restarts...).
    pub engine: EngineConfig,
}

impl SolverConfig {
    /// Convenience: enumerate at most `n` models.
    pub fn with_max_models(n: usize) -> Self {
        SolverConfig { max_models: n, ..Default::default() }
    }
}

/// Statistics of one solve call.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveStats {
    /// Ground atoms in the input program.
    pub atoms: usize,
    /// Solver variables (atoms + bodies).
    pub vars: usize,
    /// Completion clauses generated.
    pub clauses: usize,
    /// CDCL conflicts.
    pub conflicts: u64,
    /// CDCL decisions.
    pub decisions: u64,
    /// CDCL propagations.
    pub propagations: u64,
    /// Restarts.
    pub restarts: u64,
    /// Total-assignment stability checks performed.
    pub stability_checks: u64,
    /// Completion models rejected as unstable.
    pub unstable_models: u64,
}

/// Result of one solve call.
#[derive(Clone, Debug)]
pub struct SolveResult {
    /// The enumerated answer sets (internal auxiliary atoms filtered out).
    pub answer_sets: Vec<AnswerSet>,
    /// Statistics.
    pub stats: SolveStats,
}

impl SolveResult {
    /// True when at least one answer set exists.
    pub fn satisfiable(&self) -> bool {
        !self.answer_sets.is_empty()
    }
}

/// Solves a ground program.
pub fn solve_ground(
    syms: &Symbols,
    gp: &GroundProgram,
    cfg: &SolverConfig,
) -> Result<SolveResult, AspError> {
    let tr = translate::translate(syms, gp)?;
    let mut stats = SolveStats {
        atoms: tr.n_atoms,
        vars: tr.n_vars,
        clauses: tr.clauses.len(),
        ..Default::default()
    };
    let mut result = SolveResult { answer_sets: Vec::new(), stats };
    if tr.trivially_unsat {
        return Ok(result);
    }

    let mut eng = Engine::new(tr.n_vars, cfg.engine.clone());
    let mut ok = true;
    for c in &tr.clauses {
        if !eng.add_clause(c.clone()) {
            ok = false;
            break;
        }
    }

    while ok && eng.is_ok() {
        match eng.run_until_model() {
            SearchOutcome::Exhausted => break,
            SearchOutcome::Model => {
                if !tr.tight {
                    stats.stability_checks += 1;
                    let loops = stability::check_stability(&tr.rules, tr.n_atoms, |v| eng.value(v));
                    if !loops.is_empty() {
                        stats.unstable_models += 1;
                        eng.backtrack(0);
                        for clause in loops {
                            if !eng.add_clause(clause) {
                                ok = false;
                                break;
                            }
                        }
                        continue;
                    }
                }
                // Extract the answer set (drop internal choice auxiliaries).
                let mut atoms: Vec<GroundAtom> = Vec::new();
                let mut blocking: Vec<Lit> = Vec::with_capacity(tr.n_atoms);
                for i in 0..tr.n_atoms {
                    let v = Var(i as u32);
                    let val = eng.value(v);
                    blocking.push(if val == LBool::True { Lit::neg(v) } else { Lit::pos(v) });
                    if val == LBool::True {
                        let atom = gp.atoms.resolve(AtomId(i as u32));
                        if !is_internal_predicate(syms, atom.pred) {
                            atoms.push(atom.clone());
                        }
                    }
                }
                result.answer_sets.push(AnswerSet::new(atoms, syms));
                if cfg.max_models != 0 && result.answer_sets.len() >= cfg.max_models {
                    break;
                }
                eng.backtrack(0);
                if !eng.add_clause(blocking) {
                    break;
                }
            }
        }
    }

    stats.conflicts = eng.stats.conflicts;
    stats.decisions = eng.stats.decisions;
    stats.propagations = eng.stats.propagations;
    stats.restarts = eng.stats.restarts;
    result.stats = stats;
    Ok(result)
}

/// Grounds and solves a non-ground program against `facts` in one call.
pub fn solve(
    syms: &Symbols,
    program: &Program,
    facts: &[GroundAtom],
    cfg: &SolverConfig,
) -> Result<SolveResult, AspError> {
    let grounder = Grounder::new(syms, program)?;
    let gp = grounder.ground(facts)?;
    solve_ground(syms, &gp, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use asp_parser::parse_program;

    fn answer_sets(src: &str) -> Vec<Vec<String>> {
        let syms = Symbols::new();
        let program = parse_program(&syms, src).unwrap();
        let res = solve(&syms, &program, &[], &SolverConfig::default()).unwrap();
        let mut sets: Vec<Vec<String>> = res
            .answer_sets
            .iter()
            .map(|a| a.atoms().iter().map(|x| x.display(&syms).to_string()).collect())
            .collect();
        sets.sort();
        sets
    }

    #[test]
    fn facts_and_chains() {
        assert_eq!(answer_sets("p. q :- p."), vec![vec!["p".to_string(), "q".to_string()]]);
    }

    #[test]
    fn even_negation_loop_has_two_models() {
        let sets = answer_sets("a :- not b. b :- not a.");
        assert_eq!(sets, vec![vec!["a".to_string()], vec!["b".to_string()]]);
    }

    #[test]
    fn constraint_prunes_models() {
        let sets = answer_sets("a :- not b. b :- not a. :- b.");
        assert_eq!(sets, vec![vec!["a".to_string()]]);
    }

    #[test]
    fn odd_loop_is_unsat() {
        assert!(answer_sets("p :- not p.").is_empty());
    }

    #[test]
    fn choice_rule_enumerates_subsets() {
        let sets = answer_sets("{a}.");
        assert_eq!(sets, vec![vec![], vec!["a".to_string()]]);
        let sets = answer_sets("{a; b}.");
        assert_eq!(sets.len(), 4);
    }

    #[test]
    fn disjunction_splits() {
        let sets = answer_sets("a | b.");
        assert_eq!(sets, vec![vec!["a".to_string()], vec!["b".to_string()]]);
    }

    #[test]
    fn disjunction_respects_minimality_via_shifting() {
        // a | b.  a :- b.   Only {a} is a minimal model.
        let sets = answer_sets("a | b. a :- b.");
        assert_eq!(sets, vec![vec!["a".to_string()]]);
    }

    #[test]
    fn unfounded_loop_rejected() {
        // Without c, {a, b} would be a completion model but is unfounded.
        let sets = answer_sets("a :- b. b :- a. a :- c. {c}.");
        assert_eq!(sets, vec![vec![], vec!["a".to_string(), "b".to_string(), "c".to_string()]]);
    }

    #[test]
    fn positive_loop_without_support_is_empty_model() {
        let sets = answer_sets("a :- b. b :- a.");
        assert_eq!(sets, vec![Vec::<String>::new()]);
    }

    #[test]
    fn strong_negation_conflict_is_unsat() {
        assert!(answer_sets("p. -p.").is_empty());
    }

    #[test]
    fn strong_negation_without_conflict() {
        let sets = answer_sets("-p. q :- -p.");
        assert_eq!(sets, vec![vec!["-p".to_string(), "q".to_string()]]);
    }

    #[test]
    fn max_models_limits_enumeration() {
        let syms = Symbols::new();
        let program = parse_program(&syms, "{a; b; c}.").unwrap();
        let res = solve(&syms, &program, &[], &SolverConfig::with_max_models(3)).unwrap();
        assert_eq!(res.answer_sets.len(), 3);
    }

    #[test]
    fn empty_program_has_empty_model() {
        let sets = answer_sets("");
        assert_eq!(sets, vec![Vec::<String>::new()]);
    }

    #[test]
    fn grounding_plus_solving_with_variables() {
        let sets = answer_sets("p(1). p(2). q(X) :- p(X), not r(X). r(1).");
        assert_eq!(sets.len(), 1);
        assert!(sets[0].contains(&"q(2)".to_string()));
        assert!(!sets[0].contains(&"q(1)".to_string()));
    }

    #[test]
    fn stats_are_populated() {
        let syms = Symbols::new();
        let program = parse_program(&syms, "{a}. b :- a.").unwrap();
        let res = solve(&syms, &program, &[], &SolverConfig::default()).unwrap();
        assert!(res.stats.vars > 0);
        assert!(res.stats.clauses > 0);
        assert_eq!(res.answer_sets.len(), 2);
    }

    #[test]
    fn deterministic_enumeration_order() {
        let syms = Symbols::new();
        let program = parse_program(&syms, "{a; b}.").unwrap();
        let r1 = solve(&syms, &program, &[], &SolverConfig::default()).unwrap();
        let r2 = solve(&syms, &program, &[], &SolverConfig::default()).unwrap();
        let render = |r: &SolveResult| {
            r.answer_sets.iter().map(|a| a.display(&syms).to_string()).collect::<Vec<_>>()
        };
        assert_eq!(render(&r1), render(&r2));
    }
}
