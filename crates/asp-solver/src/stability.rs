//! Stability (unfounded-set) checking for total assignments.
//!
//! Completion models of non-tight programs may contain positive loops with no
//! external support. At each total assignment the checker computes the least
//! model of the reduct; atoms true in the assignment but missing from the
//! least model form an unfounded set, from which loop clauses
//! `¬a ∨ ⋁ externalBodies(U)` are derived — exactly the loop nogoods of
//! conflict-driven ASP solving, generated lazily.

use crate::lit::{LBool, Lit, Var};
use crate::translate::NormRule;

/// Loop clauses refuting the current (unstable) total assignment. Empty means
/// the assignment is a stable model.
pub fn check_stability(
    rules: &[NormRule],
    n_atoms: usize,
    value: impl Fn(Var) -> LBool,
) -> Vec<Vec<Lit>> {
    // Rules active in the reduct with a true body: body_var true means all
    // positive atoms true and all negated atoms false under the assignment.
    let active: Vec<&NormRule> =
        rules.iter().filter(|r| value(r.body_var) == LBool::True).collect();

    // Least model M of the (restricted) reduct via counting fixpoint. Only
    // atoms true in the assignment matter: M ⊆ true(A).
    let mut in_m = vec![false; n_atoms];
    let mut remaining: Vec<usize> = active.iter().map(|r| r.pos.len()).collect();
    let mut watchers: Vec<Vec<usize>> = vec![Vec::new(); n_atoms];
    let mut queue: Vec<Var> = Vec::new();
    for (ri, r) in active.iter().enumerate() {
        if r.pos.is_empty() {
            if !in_m[r.head.idx()] {
                in_m[r.head.idx()] = true;
                queue.push(r.head);
            }
        } else {
            for &p in &r.pos {
                watchers[p.idx()].push(ri);
            }
        }
    }
    while let Some(a) = queue.pop() {
        for &ri in &watchers[a.idx()] {
            let dups = active[ri].pos.iter().filter(|&&p| p == a).count();
            remaining[ri] = remaining[ri].saturating_sub(dups);
            if remaining[ri] == 0 {
                remaining[ri] = usize::MAX;
                let h = active[ri].head;
                if !in_m[h.idx()] {
                    in_m[h.idx()] = true;
                    queue.push(h);
                }
            }
        }
    }

    // Unfounded set: true atoms that the reduct cannot derive.
    let unfounded: Vec<Var> = (0..n_atoms)
        .map(|i| Var(i as u32))
        .filter(|&v| value(v) == LBool::True && !in_m[v.idx()])
        .collect();
    if unfounded.is_empty() {
        return Vec::new();
    }

    // External bodies of the unfounded set: rules whose head is in U but
    // whose positive body does not touch U. All of them are false under the
    // current assignment (otherwise the head would be in M).
    let mut in_u = vec![false; n_atoms];
    for &v in &unfounded {
        in_u[v.idx()] = true;
    }
    let mut external: Vec<Lit> = Vec::new();
    for r in rules {
        if in_u[r.head.idx()] && !r.pos.iter().any(|p| in_u[p.idx()]) {
            let l = Lit::pos(r.body_var);
            if !external.contains(&l) {
                external.push(l);
            }
        }
    }

    // One loop clause per unfounded atom (capped: each clause alone already
    // refutes the current assignment).
    const MAX_CLAUSES: usize = 64;
    unfounded
        .iter()
        .take(MAX_CLAUSES)
        .map(|&a| {
            let mut clause = Vec::with_capacity(external.len() + 1);
            clause.push(Lit::neg(a));
            clause.extend(external.iter().copied());
            clause
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(head: u32, pos: &[u32], neg: &[u32], body: u32) -> NormRule {
        NormRule {
            head: Var(head),
            pos: pos.iter().map(|&v| Var(v)).collect(),
            neg: neg.iter().map(|&v| Var(v)).collect(),
            body_var: Var(body),
        }
    }

    #[test]
    fn self_supporting_loop_is_unfounded() {
        // a :- b. b :- a.  Assignment: a, b true; both bodies true.
        let rules = vec![rule(0, &[1], &[], 2), rule(1, &[0], &[], 3)];
        let clauses = check_stability(&rules, 2, |_| LBool::True);
        assert_eq!(clauses.len(), 2);
        // No external bodies: unit refutations ¬a and ¬b.
        assert_eq!(clauses[0].len(), 1);
        assert!(clauses[0][0].is_neg());
    }

    #[test]
    fn externally_supported_loop_is_stable() {
        // a :- b. b :- a. a :- c. c.  All true.
        let rules = vec![
            rule(0, &[1], &[], 3),
            rule(1, &[0], &[], 4),
            rule(0, &[2], &[], 5),
            rule(2, &[], &[], 6),
        ];
        let clauses = check_stability(&rules, 3, |_| LBool::True);
        assert!(clauses.is_empty());
    }

    #[test]
    fn false_atoms_are_ignored() {
        // a :- b. b :- a. Everything false: stable (empty model).
        let rules = vec![rule(0, &[1], &[], 2), rule(1, &[0], &[], 3)];
        let clauses = check_stability(&rules, 2, |_| LBool::False);
        assert!(clauses.is_empty());
    }

    #[test]
    fn loop_clause_includes_external_bodies() {
        // a :- b. b :- a. a :- c (c false => body var 5 false).
        // Assignment: a, b true, c false; loop bodies true, external false.
        let rules = vec![rule(0, &[1], &[], 3), rule(1, &[0], &[], 4), rule(0, &[2], &[], 5)];
        let value = |v: Var| match v.0 {
            0 | 1 => LBool::True, // a, b
            2 => LBool::False,    // c
            3 | 4 => LBool::True, // loop bodies
            _ => LBool::False,    // external body
        };
        let clauses = check_stability(&rules, 3, value);
        assert_eq!(clauses.len(), 2);
        // Clause for `a` must offer the external body as the way out.
        let for_a = clauses.iter().find(|c| c[0] == Lit::neg(Var(0))).unwrap();
        assert!(for_a.contains(&Lit::pos(Var(5))));
    }

    #[test]
    fn partially_true_loop() {
        // a :- b. b :- a. a true, b false: a's body (b) is false, so body
        // vars are false; a is unfounded with no active rules.
        let rules = vec![rule(0, &[1], &[], 2), rule(1, &[0], &[], 3)];
        let value = |v: Var| match v.0 {
            0 => LBool::True,
            _ => LBool::False,
        };
        let clauses = check_stability(&rules, 2, value);
        assert_eq!(clauses.len(), 1);
        assert_eq!(clauses[0][0], Lit::neg(Var(0)));
    }
}
